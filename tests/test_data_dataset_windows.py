"""Tests for dataset containers and window extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.dataset import ChallengeDataset, LabelledDataset, LabelledTrial
from repro.data.windows import WindowMode, extract_window, window_offsets


def _trial(n=600, label=0, job_id=0, name="VGG11", gpu=0, seed=0):
    rng = np.random.default_rng(seed)
    return LabelledTrial(
        series=rng.normal(size=(n, 7)), label=label, model_name=name,
        job_id=job_id, gpu_index=gpu,
    )


class TestLabelledTrial:
    def test_basic(self):
        t = _trial()
        assert t.n_samples == 600

    def test_rejects_wrong_sensor_count(self):
        with pytest.raises(ValueError, match="must be"):
            LabelledTrial(series=np.zeros((10, 5)), label=0,
                          model_name="x", job_id=0)

    def test_rejects_negative_label(self):
        with pytest.raises(ValueError, match="negative"):
            LabelledTrial(series=np.zeros((10, 7)), label=-1,
                          model_name="x", job_id=0)


class TestLabelledDataset:
    def _dataset(self):
        return LabelledDataset([
            _trial(n=600, label=0, job_id=0),
            _trial(n=300, label=0, job_id=0, gpu=1),
            _trial(n=800, label=1, job_id=1, name="VGG16"),
        ])

    def test_accessors(self):
        ds = self._dataset()
        np.testing.assert_array_equal(ds.labels(), [0, 0, 1])
        np.testing.assert_array_equal(ds.job_ids(), [0, 0, 1])
        np.testing.assert_array_equal(ds.lengths(), [600, 300, 800])
        assert ds.n_jobs() == 2

    def test_eligible_filters_short_trials(self):
        ds = self._dataset().eligible(540)
        assert len(ds) == 2
        assert all(t.n_samples >= 540 for t in ds)

    def test_eligible_invalid(self):
        with pytest.raises(ValueError):
            self._dataset().eligible(0)

    def test_class_counts(self):
        counts = self._dataset().class_counts()
        assert counts["VGG11"] == 2
        assert counts["VGG16"] == 1
        assert counts["Bert"] == 0


class TestWindowOffsets:
    def test_start_mode_zero(self):
        offs = window_offsets(np.array([600, 700]), 540, WindowMode.START)
        np.testing.assert_array_equal(offs, [0, 0])

    def test_middle_mode_centered(self):
        offs = window_offsets(np.array([640]), 540, "middle")
        assert offs[0] == 50

    def test_random_mode_in_bounds(self):
        rng = np.random.default_rng(0)
        lengths = np.array([540, 600, 1000, 5000])
        offs = window_offsets(lengths, 540, WindowMode.RANDOM, rng)
        assert np.all(offs >= 0)
        assert np.all(offs + 540 <= lengths)

    def test_random_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            window_offsets(np.array([600]), 540, WindowMode.RANDOM)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="shorter than window"):
            window_offsets(np.array([500]), 540, WindowMode.START)

    def test_exact_length_ok(self):
        offs = window_offsets(np.array([540]), 540, "middle")
        assert offs[0] == 0

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown window mode"):
            window_offsets(np.array([600]), 540, "end")

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=540, max_value=5000), min_size=1, max_size=20),
        st.integers(0, 1000),
    )
    def test_property_random_offsets_valid(self, lengths, seed):
        lengths = np.array(lengths)
        offs = window_offsets(lengths, 540, "random", np.random.default_rng(seed))
        assert np.all((offs >= 0) & (offs + 540 <= lengths))


class TestExtractWindow:
    def test_is_view(self):
        series = np.arange(700 * 7, dtype=float).reshape(700, 7)
        win = extract_window(series, 10, 540)
        assert win.base is not None and np.shares_memory(win, series)  # no copy
        assert win.shape == (540, 7)
        np.testing.assert_array_equal(win[0], series[10])

    def test_out_of_bounds(self):
        with pytest.raises(ValueError, match="out of bounds"):
            extract_window(np.zeros((600, 7)), 100, 540)

    def test_negative_offset(self):
        with pytest.raises(ValueError):
            extract_window(np.zeros((600, 7)), -1, 540)

    def test_error_names_offending_job(self):
        """A 17k-trial release needs to know *which* trial was short."""
        with pytest.raises(ValueError, match=r"job 4217's series of length 600"):
            extract_window(np.zeros((600, 7)), 100, 540, job_id=4217)
        with pytest.raises(ValueError, match=r"\[100, 640\)"):
            extract_window(np.zeros((600, 7)), 100, 540, job_id=4217)

    def test_error_without_job_id_stays_generic(self):
        with pytest.raises(ValueError, match=r"for series of length 600"):
            extract_window(np.zeros((600, 7)), 100, 540)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=3000),
                 min_size=1, max_size=12),
        st.integers(min_value=1, max_value=1000),
        st.sampled_from(["start", "middle", "random"]),
        st.integers(0, 1000),
    )
    def test_property_offsets_always_extractable(self, lengths, window,
                                                 mode, seed):
        """Every offset window_offsets returns is accepted by
        extract_window — including the exact-fit boundary."""
        lengths = np.array(lengths)
        rng = np.random.default_rng(seed)
        if np.any(lengths < window):
            with pytest.raises(ValueError, match="shorter than window"):
                window_offsets(lengths, window, mode, rng)
            return
        offs = window_offsets(lengths, window, mode, rng)
        for n, off in zip(lengths, offs):
            win = extract_window(np.zeros((n, 7)), int(off), window)
            assert win.shape == (window, 7)


class TestChallengeDataset:
    def _make(self, n_train=8, n_test=4):
        rng = np.random.default_rng(3)
        return ChallengeDataset(
            name="60-random-1",
            X_train=rng.normal(size=(n_train, 20, 7)).astype(np.float32),
            y_train=rng.integers(0, 3, n_train),
            model_train=np.array(["m"] * n_train),
            X_test=rng.normal(size=(n_test, 20, 7)).astype(np.float32),
            y_test=rng.integers(0, 3, n_test),
            model_test=np.array(["m"] * n_test),
        )

    def test_properties(self):
        ds = self._make()
        assert ds.n_train == 8 and ds.n_test == 4
        assert ds.n_samples == 20 and ds.n_sensors == 7

    def test_summary_row(self):
        row = self._make().summary_row()
        assert row == {
            "dataset": "60-random-1", "training_trials": 8,
            "testing_trials": 4, "samples": 20, "sensors": 7,
        }

    def test_rejects_mismatched_window(self):
        ds = self._make()
        with pytest.raises(ValueError, match="window shapes"):
            ChallengeDataset(
                name="x", X_train=ds.X_train, y_train=ds.y_train,
                model_train=ds.model_train, X_test=ds.X_test[:, :10],
                y_test=ds.y_test, model_test=ds.model_test,
            )

    def test_rejects_length_mismatch(self):
        ds = self._make()
        with pytest.raises(ValueError, match="inconsistent"):
            ChallengeDataset(
                name="x", X_train=ds.X_train, y_train=ds.y_train[:-1],
                model_train=ds.model_train, X_test=ds.X_test,
                y_test=ds.y_test, model_test=ds.model_test,
            )

    def test_npz_dict_keys(self):
        d = self._make().as_npz_dict()
        assert set(d) == {
            "X_train", "y_train", "model_train",
            "X_test", "y_test", "model_test",
        }
