"""Unit tests for the resilience toolkit: fault points, retry, atomic
persistence + checksums, preemption sampling, and checkpoint basics."""

import pickle
import zlib

import numpy as np
import pytest

from repro.resilience import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    inject,
    load_model_with_retry,
    retry_call,
)
from repro.simcluster.preemption import PreemptionEvent, PreemptionProcess
from repro.utils.persist import atomic_write_bytes, load_model, save_model


class TestFaultInjection:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec("nonsense.point")

    def test_bad_spec_params_rejected(self):
        with pytest.raises(ValueError, match="at_hit"):
            FaultSpec("persist.mid_write", at_hit=0)
        with pytest.raises(ValueError, match="mode"):
            FaultSpec("persist.mid_write", mode="explode")

    def test_raise_mode_fires_on_nth_hit(self):
        injector = FaultInjector(
            [FaultSpec("trainer.mid_epoch", at_hit=3, mode="raise")]
        )
        injector.trip("trainer.mid_epoch")
        injector.trip("trainer.mid_epoch")
        with pytest.raises(InjectedFault, match="hit 3"):
            injector.trip("trainer.mid_epoch")
        assert injector.hits["trainer.mid_epoch"] == 3
        # A fired spec does not fire twice.
        injector.trip("trainer.mid_epoch")

    def test_points_are_noops_without_injector(self, tmp_path):
        # No injector installed: a mid-write fault point does nothing.
        path = atomic_write_bytes(tmp_path / "f.bin", b"hello world")
        assert path.read_bytes() == b"hello world"

    def test_inject_context_uninstalls(self, tmp_path):
        with inject(FaultSpec("persist.mid_write", mode="raise")):
            with pytest.raises(InjectedFault):
                atomic_write_bytes(tmp_path / "f.bin", b"payload")
        # Context exited: writes work again.
        atomic_write_bytes(tmp_path / "f.bin", b"payload")
        assert (tmp_path / "f.bin").read_bytes() == b"payload"


class TestAtomicWrite:
    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"old-contents")
        with inject(FaultSpec("persist.mid_write", mode="raise")):
            with pytest.raises(InjectedFault):
                atomic_write_bytes(target, b"new-contents")
        # Old contents intact, no tmp litter left by the raise path.
        assert target.read_bytes() == b"old-contents"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_crash_before_replace_keeps_old_file(self, tmp_path):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"old-contents")
        with inject(FaultSpec("persist.before_replace", mode="raise")):
            with pytest.raises(InjectedFault):
                atomic_write_bytes(target, b"new-contents")
        assert target.read_bytes() == b"old-contents"

    def test_creates_parent_dirs(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "a" / "b" / "f.bin", b"x")
        assert path.read_bytes() == b"x"


class TestChecksum:
    def test_round_trip_with_checksum(self, tmp_path):
        from repro.ml.preprocessing import StandardScaler

        path = save_model(StandardScaler(), tmp_path / "m.pkl")
        payload = pickle.loads(path.read_bytes())
        assert payload["crc32"] == zlib.crc32(payload["model_pickle"])
        assert type(load_model(path)).__name__ == "StandardScaler"

    def test_bit_flip_detected(self, tmp_path):
        from repro.ml.preprocessing import StandardScaler

        path = save_model(StandardScaler(), tmp_path / "m.pkl")
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError):
            load_model(path)

    def test_checksum_optional(self, tmp_path):
        from repro.ml.preprocessing import StandardScaler

        path = save_model(StandardScaler(), tmp_path / "m.pkl", checksum=False)
        payload = pickle.loads(path.read_bytes())
        assert payload["crc32"] is None
        load_model(path)  # loads fine, simply unverified

    def test_legacy_inline_model_still_loads(self, tmp_path):
        # Files from pre-checksum releases carried the model object inline.
        import repro
        from repro.ml.preprocessing import StandardScaler

        legacy = {
            "magic": "repro-model-v1",
            "repro_version": repro.__version__,
            "model_class": "StandardScaler",
            "model": StandardScaler(),
        }
        path = tmp_path / "legacy.pkl"
        path.write_bytes(pickle.dumps(legacy))
        assert type(load_model(path)).__name__ == "StandardScaler"


class TestRetry:
    def test_policy_delays_are_bounded_exponential(self):
        policy = RetryPolicy(attempts=5, base_delay_s=0.1, growth=2.0,
                             max_delay_s=0.3)
        assert [policy.delay(k) for k in range(4)] == [0.1, 0.2, 0.3, 0.3]

    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        slept = []
        out = retry_call(flaky, policy=RetryPolicy(attempts=4, base_delay_s=0.01),
                         sleep=slept.append)
        assert out == "done"
        assert len(calls) == 3
        assert slept == [0.01, 0.02]

    def test_exhausted_attempts_reraise(self):
        def always_fails():
            raise ValueError("still broken")

        with pytest.raises(ValueError, match="still broken"):
            retry_call(always_fails, policy=RetryPolicy(attempts=3),
                       sleep=lambda _s: None)

    def test_unlisted_exception_not_retried(self):
        calls = []

        def boom():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry_call(boom, sleep=lambda _s: None)
        assert len(calls) == 1

    def test_load_model_with_retry_waits_for_writer(self, tmp_path):
        from repro.ml.preprocessing import StandardScaler

        path = tmp_path / "late.pkl"

        def write_then_sleep(_delay):
            # The "writer" finishes during the reader's backoff.
            save_model(StandardScaler(), path)

        model = load_model_with_retry(
            path, policy=RetryPolicy(attempts=3, base_delay_s=0.0),
            sleep=write_then_sleep,
        )
        assert type(model).__name__ == "StandardScaler"


class TestPreemptionProcess:
    def test_events_deterministic_and_sorted(self):
        a = PreemptionProcess(100.0, seed=7, job="j").events(1000.0)
        b = PreemptionProcess(100.0, seed=7, job="j").events(1000.0)
        assert a == b
        assert all(x.time_s <= y.time_s for x, y in zip(a, a[1:]))
        assert all(0 <= e.time_s < 1000.0 for e in a)

    def test_different_jobs_get_different_schedules(self):
        a = PreemptionProcess(100.0, seed=7, job="j1").events(5000.0)
        b = PreemptionProcess(100.0, seed=7, job="j2").events(5000.0)
        assert a != b

    def test_mtbf_scales_event_count(self):
        frequent = PreemptionProcess(50.0, seed=3).events(50_000.0)
        rare = PreemptionProcess(5000.0, seed=3).events(50_000.0)
        assert len(frequent) > len(rare)
        # Poisson mean ~ horizon / mtbf.
        assert len(frequent) == pytest.approx(1000, rel=0.2)

    def test_kill_epochs_deduped_and_in_range(self):
        process = PreemptionProcess(1.5, seed=0)
        epochs = process.kill_epochs(10, epoch_s=1.0)
        assert epochs == sorted(set(epochs))
        assert all(1 <= e <= 10 for e in epochs)

    def test_validation(self):
        with pytest.raises(ValueError, match="mtbf_s"):
            PreemptionProcess(0.0)
        with pytest.raises(ValueError, match="time_s"):
            PreemptionEvent(-1.0)
        with pytest.raises(ValueError, match="kind"):
            PreemptionEvent(1.0, kind="meteor")


class TestHistoryRegressions:
    def test_empty_history_sentinels_consistent(self):
        # best_epoch used to raise ValueError from max() while
        # best_val_accuracy returned NaN on the same empty history.
        from repro.nn.training import TrainingHistory

        history = TrainingHistory()
        assert np.isnan(history.best_val_accuracy)
        assert history.best_epoch == 0

    def test_nonempty_history_best_pair(self):
        from repro.nn.training import EpochStats, TrainingHistory

        history = TrainingHistory()
        for epoch, acc in [(1, 0.2), (2, 0.9), (3, 0.5)]:
            history.append(EpochStats(epoch, 1.0, acc, 0.01, 0.0))
        assert history.best_epoch == 2
        assert history.best_val_accuracy == 0.9

    def test_matches_ignores_timing_only(self):
        from repro.nn.training import EpochStats, TrainingHistory

        a = TrainingHistory([EpochStats(1, 0.5, 0.8, 0.01, 1.0)])
        b = TrainingHistory([EpochStats(1, 0.5, 0.8, 0.01, 99.0)])
        c = TrainingHistory([EpochStats(1, 0.5, 0.80001, 0.01, 1.0)])
        assert a.matches(b)
        assert not a.matches(b, ignore_timing=False)
        assert not a.matches(c)
        assert not a.matches(TrainingHistory())


class TestGridSearchParity:
    def test_cross_val_score_n_jobs_matches_serial(self, blobs_split):
        from repro.ml.model_selection import cross_val_score
        from repro.ml.tree import DecisionTreeClassifier

        Xtr, ytr, _, _ = blobs_split
        est = DecisionTreeClassifier(max_depth=3, random_state=0)
        serial = cross_val_score(est, Xtr, ytr, cv=3)
        fanned = cross_val_score(est, Xtr, ytr, cv=3, n_jobs=2)
        np.testing.assert_array_equal(serial, fanned)

    def test_grid_search_verbose_on_parallel_path(self, blobs_split, capsys):
        from repro.ml.model_selection import GridSearchCV
        from repro.ml.tree import DecisionTreeClassifier

        Xtr, ytr, _, _ = blobs_split
        search = GridSearchCV(
            DecisionTreeClassifier(random_state=0),
            {"max_depth": [2, 3]},
            cv=2, n_jobs=2, verbose=True,
        )
        search.fit(Xtr, ytr)
        out = capsys.readouterr().out
        # One progress line per candidate x fold, like the serial path.
        assert out.count("[grid]") == 4
        assert "max_depth" in out
