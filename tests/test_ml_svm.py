"""Tests for kernels, the SMO solver, and the SVC classifiers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.svm import SVC, BinarySVC, kernel_matrix, resolve_gamma, smo_solve


class TestKernels:
    def test_linear_is_dot(self):
        rng = np.random.default_rng(0)
        X, Z = rng.normal(size=(4, 3)), rng.normal(size=(5, 3))
        np.testing.assert_allclose(kernel_matrix(X, Z, "linear"), X @ Z.T)

    def test_rbf_diagonal_ones(self):
        X = np.random.default_rng(1).normal(size=(6, 4))
        K = kernel_matrix(X, X, "rbf", gamma=0.5)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_rbf_range(self):
        X = np.random.default_rng(2).normal(size=(10, 3))
        K = kernel_matrix(X, X, "rbf", gamma=1.0)
        assert K.min() >= 0.0 and K.max() <= 1.0 + 1e-12

    def test_rbf_symmetry(self):
        X = np.random.default_rng(3).normal(size=(8, 5))
        K = kernel_matrix(X, X, "rbf", gamma=0.3)
        np.testing.assert_allclose(K, K.T, atol=1e-12)

    def test_rbf_decreases_with_distance(self):
        X = np.array([[0.0], [1.0], [5.0]])
        K = kernel_matrix(X[:1], X, "rbf", gamma=1.0)[0]
        assert K[0] > K[1] > K[2]

    def test_poly(self):
        X = np.array([[1.0, 0.0]])
        Z = np.array([[2.0, 0.0]])
        K = kernel_matrix(X, Z, "poly", gamma=1.0, degree=2, coef0=1.0)
        assert K[0, 0] == pytest.approx((2.0 + 1.0) ** 2)

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernel_matrix(np.ones((2, 2)), np.ones((2, 2)), "sigmoid")

    def test_feature_mismatch(self):
        with pytest.raises(ValueError, match="feature mismatch"):
            kernel_matrix(np.ones((2, 3)), np.ones((2, 4)))

    def test_resolve_gamma_scale(self):
        X = np.random.default_rng(4).normal(size=(100, 5))
        g = resolve_gamma("scale", X)
        assert g == pytest.approx(1.0 / (5 * X.var()))

    def test_resolve_gamma_auto(self):
        assert resolve_gamma("auto", np.ones((3, 4))) == 0.25

    def test_resolve_gamma_invalid(self):
        with pytest.raises(ValueError):
            resolve_gamma(-1.0, np.ones((2, 2)))
        with pytest.raises(ValueError):
            resolve_gamma("median", np.ones((2, 2)))


class TestSMO:
    def _separable(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        X = np.vstack([
            rng.normal(-2.0, 0.5, size=(n // 2, 2)),
            rng.normal(2.0, 0.5, size=(n // 2, 2)),
        ])
        y = np.concatenate([-np.ones(n // 2), np.ones(n // 2)])
        return X, y

    def test_converges_on_separable(self):
        X, y = self._separable()
        K = kernel_matrix(X, X, "linear")
        res = smo_solve(K, y, C=1.0)
        assert res.converged
        assert res.gap <= 1e-3

    def test_kkt_box_constraints(self):
        X, y = self._separable(seed=1)
        K = kernel_matrix(X, X, "rbf", gamma=0.5)
        res = smo_solve(K, y, C=2.0)
        assert np.all(res.alpha >= -1e-12)
        assert np.all(res.alpha <= 2.0 + 1e-12)

    def test_equality_constraint(self):
        X, y = self._separable(seed=2)
        K = kernel_matrix(X, X, "rbf", gamma=0.5)
        res = smo_solve(K, y, C=1.0)
        assert abs(np.dot(res.alpha, y)) < 1e-8

    def test_training_accuracy_separable(self):
        X, y = self._separable(seed=3)
        K = kernel_matrix(X, X, "rbf", gamma=1.0)
        res = smo_solve(K, y, C=10.0)
        pred = np.sign(K @ (res.alpha * y) + res.bias)
        assert np.mean(pred == y) == 1.0

    def test_rejects_single_class(self):
        K = np.eye(4)
        with pytest.raises(ValueError, match="both classes"):
            smo_solve(K, np.ones(4), C=1.0)

    def test_rejects_bad_labels(self):
        K = np.eye(4)
        with pytest.raises(ValueError, match="-1 and \\+1"):
            smo_solve(K, np.array([0, 1, 0, 1]), C=1.0)

    def test_rejects_bad_C(self):
        X, y = self._separable()
        K = kernel_matrix(X, X, "linear")
        with pytest.raises(ValueError):
            smo_solve(K, y, C=0.0)

    def test_iteration_cap_respected(self):
        X, y = self._separable(seed=4)
        K = kernel_matrix(X, X, "rbf", gamma=0.5)
        res = smo_solve(K, y, C=1.0, max_iter=3)
        assert res.n_iter <= 3

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100), st.sampled_from([0.1, 1.0, 10.0]))
    def test_property_dual_feasible(self, seed, C):
        X, y = self._separable(seed=seed)
        K = kernel_matrix(X, X, "rbf", gamma=0.5)
        res = smo_solve(K, y, C=C)
        assert np.all((res.alpha >= -1e-10) & (res.alpha <= C + 1e-10))
        assert abs(np.dot(res.alpha, y)) < 1e-6


class TestBinarySVC:
    def test_fit_predict(self):
        rng = np.random.default_rng(5)
        X = np.vstack([rng.normal(-1.5, 0.5, (30, 3)), rng.normal(1.5, 0.5, (30, 3))])
        y = np.concatenate([-np.ones(30), np.ones(30)]).astype(int)
        clf = BinarySVC(C=1.0).fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.95

    def test_support_vector_compression(self):
        rng = np.random.default_rng(6)
        X = np.vstack([rng.normal(-3, 0.3, (50, 2)), rng.normal(3, 0.3, (50, 2))])
        y = np.concatenate([-np.ones(50), np.ones(50)])
        clf = BinarySVC(C=1.0).fit(X, y)
        # Well-separated blobs need few support vectors.
        assert len(clf.support_vectors_) < 40

    def test_rejects_non_pm1(self):
        with pytest.raises(ValueError, match="\\{-1, \\+1\\}"):
            BinarySVC().fit(np.ones((4, 2)), np.array([0, 1, 0, 1]))


class TestOneVsRestSVC:
    def test_multiclass_blobs(self, blobs_split):
        from repro.ml.svm import OneVsRestSVC

        Xtr, ytr, Xte, yte = blobs_split
        clf = OneVsRestSVC(C=1.0).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.85

    def test_one_machine_per_class(self, blobs_split):
        from repro.ml.svm import OneVsRestSVC

        Xtr, ytr, _, _ = blobs_split
        clf = OneVsRestSVC(C=1.0).fit(Xtr, ytr)
        assert len(clf.machines_) == len(np.unique(ytr))

    def test_decision_function_shape(self, blobs_split):
        from repro.ml.svm import OneVsRestSVC

        Xtr, ytr, Xte, _ = blobs_split
        clf = OneVsRestSVC(C=1.0).fit(Xtr, ytr)
        assert clf.decision_function(Xte[:4]).shape == (4, 3)

    def test_agrees_with_ovo_on_easy_data(self, blobs_split):
        from repro.ml.svm import OneVsRestSVC

        Xtr, ytr, Xte, yte = blobs_split
        ovr = OneVsRestSVC(C=1.0).fit(Xtr, ytr)
        ovo = SVC(C=1.0).fit(Xtr, ytr)
        agreement = np.mean(ovr.predict(Xte) == ovo.predict(Xte))
        assert agreement > 0.9


class TestSVC:
    def test_multiclass_blobs(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        clf = SVC(C=1.0).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.9

    def test_ovo_machine_count(self, blobs_split):
        Xtr, ytr, _, _ = blobs_split
        clf = SVC(C=1.0).fit(Xtr, ytr)
        k = len(np.unique(ytr))
        assert len(clf.machines_) == k * (k - 1) // 2

    def test_decision_function_votes(self, blobs_split):
        Xtr, ytr, Xte, _ = blobs_split
        clf = SVC(C=1.0).fit(Xtr, ytr)
        votes = clf.decision_function(Xte[:5])
        assert votes.shape == (5, 3)
        # Votes per sample sum to the number of pairs.
        np.testing.assert_allclose(votes.sum(axis=1), 3.0)

    def test_non_contiguous_labels(self):
        rng = np.random.default_rng(7)
        X = np.vstack([rng.normal(i * 3, 0.4, (20, 2)) for i in range(3)])
        y = np.repeat([5, 10, 42], 20)
        clf = SVC(C=1.0).fit(X, y)
        preds = clf.predict(X)
        assert set(np.unique(preds)) <= {5, 10, 42}
        assert np.mean(preds == y) > 0.95

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            SVC().fit(np.ones((5, 2)), np.zeros(5, dtype=int))

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            SVC().predict(np.ones((2, 2)))

    def test_regularization_effect(self):
        """Smaller C yields a smoother boundary => at least as many SVs."""
        rng = np.random.default_rng(8)
        X = np.vstack([rng.normal(-1, 1.0, (40, 2)), rng.normal(1, 1.0, (40, 2))])
        y = np.concatenate([-np.ones(40), np.ones(40)])
        soft = BinarySVC(C=0.1).fit(X, y)
        hard = BinarySVC(C=10.0).fit(X, y)
        assert len(soft.support_vectors_) >= len(hard.support_vectors_)
