"""Property tests for the online classifier's emission cadence."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.streaming import OnlineWorkloadClassifier


class _Always7:
    def predict(self, X):
        return np.full(X.shape[0], 7, dtype=np.int64)


class TestEmissionCadence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=10, max_value=60),   # window
        st.integers(min_value=1, max_value=30),    # hop
        st.integers(min_value=0, max_value=200),   # total samples
    )
    def test_emission_count_formula(self, window, hop, total):
        """Emissions: one at window-fill, then one per completed hop."""
        clf = OnlineWorkloadClassifier(model=_Always7(), window=window,
                                       hop=hop, vote_window=3)
        preds = clf.push(np.zeros((total, 7)))
        if total < window:
            expected = 0
        else:
            expected = 1 + (total - window) // hop
        assert len(preds) == expected

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=40))
    def test_incremental_equals_bulk(self, chunk):
        """Feeding sample-by-sample or in chunks yields identical emissions."""
        data = np.random.default_rng(0).normal(size=(150, 7))
        bulk = OnlineWorkloadClassifier(model=_Always7(), window=30, hop=10)
        bulk_preds = bulk.push(data)
        inc = OnlineWorkloadClassifier(model=_Always7(), window=30, hop=10)
        inc_preds = []
        for start in range(0, len(data), chunk):
            inc_preds.extend(inc.push(data[start : start + chunk]))
        assert [p.sample_index for p in inc_preds] == \
            [p.sample_index for p in bulk_preds]
        assert [p.label for p in inc_preds] == [p.label for p in bulk_preds]

    def test_constant_model_full_confidence(self):
        clf = OnlineWorkloadClassifier(model=_Always7(), window=20, hop=5,
                                       vote_window=4)
        preds = clf.push(np.zeros((60, 7)))
        assert preds[-1].confidence == 1.0
        assert preds[-1].smoothed_label == 7
