"""Bit-identity parity suite for the inference fast paths.

Every optimisation ships with the slow reference it replaced; these tests
pin that fast and slow produce *identical bits*, not merely close floats:

* ``no_grad`` fused-kernel forwards (LSTM / BiLSTM / Conv1d / MaxPool1d),
* the flattened joint tree traversal (forest + boosting, any ``n_jobs``),
* the zero-copy serving ring + batch-assembly scratch,
* process-parallel dataset generation,
* the numerically stable sigmoid.
"""

import numpy as np
import pytest

from repro.ml.boosting.xgb import GradientBoostingClassifier
from repro.ml.ensemble.forest import RandomForestClassifier
from repro.ml.tree.flat import FlatForest
from repro.nn import BiLSTM, LSTM, Tensor
from repro.nn.layers.conv import Conv1d, MaxPool1d
from repro.nn.layers.rnn import _sigmoid
from repro.nn.tensor import is_grad_enabled, no_grad
from repro.perf.harness import BenchResult, measure, write_bench_json
from repro.serve.batcher import MicroBatcher
from repro.serve.session import StreamSession
from repro.simcluster.sensors import N_GPU_SENSORS


# ----------------------------------------------------------------------
# no_grad fused-kernel forwards
# ----------------------------------------------------------------------
SHAPES = [(3, 17, 7, 8), (1, 5, 2, 3), (4, 9, 5, 16)]


def _x(n, t, c, seed=0):
    return np.random.default_rng(seed).normal(size=(n, t, c)) \
             .astype(np.float32)


class TestNoGradForwardParity:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("reverse", [False, True])
    def test_lstm_bit_identical(self, shape, reverse):
        n, t, c, h = shape
        layer = LSTM(c, h, rng=1)
        x = _x(n, t, c)
        ref = layer(Tensor(x), reverse=reverse).data
        with no_grad():
            fast = layer(Tensor(x), reverse=reverse).data
        assert np.array_equal(ref, fast)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_bilstm_bit_identical(self, shape):
        n, t, c, h = shape
        layer = BiLSTM(c, h, rng=2)
        x = _x(n, t, c, seed=1)
        ref = layer(Tensor(x)).data
        with no_grad():
            fast = layer(Tensor(x)).data
        assert np.array_equal(ref, fast)

    @pytest.mark.parametrize("padding", ["valid", "same", 2])
    def test_conv1d_bit_identical(self, padding):
        layer = Conv1d(5, 9, kernel_size=3, padding=padding, rng=3)
        x = _x(4, 20, 5, seed=2)
        ref = layer(Tensor(x)).data
        with no_grad():
            fast = layer(Tensor(x)).data
        assert np.array_equal(ref, fast)

    def test_maxpool_bit_identical(self):
        layer = MaxPool1d(3)
        x = _x(4, 21, 6, seed=3)
        ref = layer(Tensor(x)).data
        with no_grad():
            fast = layer(Tensor(x)).data
        assert np.array_equal(ref, fast)

    def test_fast_path_builds_no_graph(self):
        layer = LSTM(4, 6, rng=4)
        with no_grad():
            out = layer(Tensor(_x(2, 7, 4)))
        assert out._parents == ()
        assert not out.requires_grad

    def test_scratch_reuse_does_not_corrupt_earlier_outputs(self):
        # The LSTM reuses per-layer scratch between no_grad calls; outputs
        # must be freshly allocated, never views of that scratch.
        layer = LSTM(3, 5, rng=5)
        a_in, b_in = _x(2, 9, 3, seed=4), _x(2, 9, 3, seed=5)
        with no_grad():
            first = layer(Tensor(a_in)).data
            snapshot = first.copy()
            layer(Tensor(b_in))
        assert np.array_equal(first, snapshot)

    def test_scratch_rebuilds_on_shape_change(self):
        layer = LSTM(3, 5, rng=6)
        with no_grad():
            small = layer(Tensor(_x(1, 4, 3, seed=6))).data
            big = layer(Tensor(_x(5, 11, 3, seed=7))).data
        assert small.shape == (1, 4, 5) and big.shape == (5, 11, 5)

    def test_scratch_not_pickled(self):
        import pickle

        layer = LSTM(3, 5, rng=7)
        with no_grad():
            layer(Tensor(_x(2, 6, 3)))
        assert layer._infer_scratch is not None
        clone = pickle.loads(pickle.dumps(layer))
        assert clone._infer_scratch is None

    def test_no_grad_decorator(self):
        @no_grad()
        def probe():
            return is_grad_enabled()

        assert probe() is False
        assert is_grad_enabled() is True


class TestStableSigmoid:
    def test_extremes_do_not_overflow(self):
        with np.errstate(over="raise", invalid="raise"):
            out = _sigmoid(np.array([-100.0, 0.0, 100.0], dtype=np.float32))
        assert out[0] == pytest.approx(0.0, abs=1e-30)
        assert out[1] == 0.5
        assert out[2] == 1.0

    def test_matches_naive_form_in_safe_range(self):
        x = np.linspace(-10, 10, 201).astype(np.float32)
        naive = 1.0 / (1.0 + np.exp(-x.astype(np.float64)))
        assert np.allclose(_sigmoid(x), naive, atol=1e-6)

    def test_out_buffer(self):
        x = np.array([1.5, -2.0], dtype=np.float32)
        buf = np.empty_like(x)
        res = _sigmoid(x, out=buf)
        assert res is buf
        assert np.array_equal(res, _sigmoid(x))


# ----------------------------------------------------------------------
# Flattened tree-ensemble inference
# ----------------------------------------------------------------------
def _blobs(n, d, k, seed):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=3.0, size=(k, d))
    y = rng.integers(0, k, size=n)
    return centers[y] + rng.normal(size=(n, d)), y


class TestFlatForest:
    @pytest.fixture(scope="class")
    def forest(self):
        X, y = _blobs(250, 10, 6, seed=0)
        y[:3] = 6          # rare class so some bootstraps miss classes
        rf = RandomForestClassifier(n_estimators=20, max_depth=7,
                                    oob_score=True, random_state=1)
        return rf.fit(X, y)

    def test_flat_matches_slow(self, forest):
        Xt, _ = _blobs(400, 10, 6, seed=1)
        assert np.array_equal(forest._predict_proba_slow(Xt),
                              forest.predict_proba(Xt))

    def test_n_jobs_bit_identical(self, forest):
        Xt, _ = _blobs(120, 10, 6, seed=2)
        assert np.array_equal(forest.predict_proba(Xt),
                              forest.predict_proba(Xt, n_jobs=2))

    def test_pickle_drops_cache_and_still_matches(self, forest):
        import pickle

        Xt, _ = _blobs(60, 10, 6, seed=3)
        expected = forest.predict_proba(Xt)
        clone = pickle.loads(pickle.dumps(forest))
        assert clone.__dict__.get("_flat_") is None
        assert np.array_equal(expected, clone.predict_proba(Xt))

    def test_feature_mismatch_raises(self, forest):
        with pytest.raises(ValueError, match="features"):
            forest.predict_proba(np.zeros((4, 3)))

    def test_from_trees_rebases_children(self, forest):
        flat = FlatForest.from_trees(forest.estimators_,
                                     classes=forest.classes_)
        sizes = [t.feature_.shape[0] for t in forest.estimators_]
        assert flat.feature_.shape[0] == sum(sizes)
        assert flat.n_trees == len(forest.estimators_)
        internal = flat.feature_ >= 0
        assert (flat.children_left_[internal] >= 0).all()
        assert (flat.children_left_[~internal] == -1).all()
        # Leaf payload rows are the tree distributions lifted onto the
        # ensemble class set.
        assert flat.value_.shape == (sum(sizes), forest.classes_.size)

    def test_boosting_flat_matches_slow(self):
        X, y = _blobs(200, 8, 4, seed=4)
        gb = GradientBoostingClassifier(n_estimators=5, max_depth=3,
                                        random_state=0).fit(X, y)
        Xt, yt = _blobs(150, 8, 4, seed=5)
        assert np.array_equal(gb._margins_slow(Xt), gb._margins(Xt))
        assert np.array_equal(gb._margins_slow(Xt, 2), gb._margins(Xt, 2))
        assert np.array_equal(gb._margins(Xt), gb._margins(Xt, n_jobs=2))
        # staged_accuracy accumulates the same margins round by round
        staged = gb.staged_accuracy(Xt, yt)
        assert staged.shape == (5,)
        final = float(np.mean(gb.predict(Xt) == yt))
        assert staged[-1] == pytest.approx(final)


# ----------------------------------------------------------------------
# Zero-copy serving
# ----------------------------------------------------------------------
class _MeanSignModel:
    def predict(self, X):
        return (X.mean(axis=(1, 2)) > 0.0).astype(np.int64)


class TestZeroCopyServing:
    def test_ring_windows_match_raw_stream(self):
        window, hop, total = 24, 6, 24 + 5 * 6
        rng = np.random.default_rng(0)
        stream = rng.normal(size=(total, N_GPU_SENSORS)).astype(np.float32)
        sess = StreamSession(session_id="j", window=window, hop=hop)
        reqs = []
        for start in range(0, total, 7):    # ragged chunks cross the wrap
            reqs.extend(sess.push(stream[start:start + 7]))
        assert [r.sample_index for r in reqs] == [24, 30, 36, 42, 48, 54]
        for req in reqs:
            expected = stream[req.sample_index - window:req.sample_index]
            assert np.array_equal(req.window, expected)
            assert req.window.dtype == np.float32
            assert req.window.flags["C_CONTIGUOUS"]

    def test_snapshots_are_independent_copies(self):
        sess = StreamSession(session_id="j", window=4, hop=2)
        rng = np.random.default_rng(1)
        first = sess.push(rng.normal(size=(4, N_GPU_SENSORS)))[0]
        before = first.window.copy()
        sess.push(rng.normal(size=(6, N_GPU_SENSORS)))
        assert np.array_equal(first.window, before)

    def test_oversized_push_keeps_last_window(self):
        window = 8
        sess = StreamSession(session_id="j", window=window, hop=2)
        rng = np.random.default_rng(2)
        stream = rng.normal(size=(45, N_GPU_SENSORS)).astype(np.float32)
        reqs = sess.push(stream)
        for req in reqs:
            expected = stream[req.sample_index - window:req.sample_index]
            assert np.array_equal(req.window, expected)

    def test_batcher_scratch_is_reused_not_aliased(self):
        model = _MeanSignModel()
        batcher = MicroBatcher(model, max_batch=3, max_delay_s=10.0)
        rng = np.random.default_rng(3)

        def req_batch(seed):
            sess = StreamSession(session_id=seed, window=5, hop=5)
            g = np.random.default_rng(seed)
            return sess.push(g.normal(size=(5, N_GPU_SENSORS)))[0]

        first = [batcher.submit(req_batch(s)) for s in (10, 11, 12)]
        done_a = first[-1]
        assert len(done_a) == 3
        scratch_a = batcher._scratch
        labels_a = [c.label for c in done_a]
        expect_a = model.predict(
            np.stack([c.request.window for c in done_a])).tolist()
        assert labels_a == expect_a

        second = [batcher.submit(req_batch(s)) for s in (20, 21, 22)]
        done_b = second[-1]
        assert batcher._scratch is scratch_a       # buffer reused...
        assert [c.label for c in done_a] == labels_a   # ...results stable
        expect_b = model.predict(
            np.stack([c.request.window for c in done_b])).tolist()
        assert [c.label for c in done_b] == expect_b

    def test_scratch_rebuilds_on_geometry_change(self):
        batcher = MicroBatcher(_MeanSignModel(), max_batch=2, max_delay_s=10.0)
        small = [np.ones((4, 3), dtype=np.float32)] * 2
        big = [np.ones((6, 3), dtype=np.float32)]
        assert batcher._assemble(small).shape == (2, 4, 3)
        assert batcher._assemble(big).shape == (1, 6, 3)
        assert batcher._scratch.shape == (2, 6, 3)


# ----------------------------------------------------------------------
# Parallel dataset generation
# ----------------------------------------------------------------------
class TestParallelDatagen:
    def test_bit_identical_to_serial(self):
        from repro.simcluster.cluster import ClusterSimulator, SimulationConfig

        cfg = SimulationConfig(seed=11, trials_scale=0.004,
                               min_jobs_per_class=1)
        serial_jobs, serial_log = ClusterSimulator(cfg).generate()
        par_jobs, par_log = ClusterSimulator(cfg).generate(n_jobs=2)
        assert list(serial_log) == list(par_log)
        assert len(serial_jobs) == len(par_jobs)
        for a, b in zip(serial_jobs, par_jobs):
            assert a.record == b.record
            for ga, gb in zip(a.gpu_series, b.gpu_series):
                assert np.array_equal(ga.data, gb.data)

    def test_n_jobs_one_is_serial(self):
        from repro.simcluster.cluster import ClusterSimulator, SimulationConfig

        cfg = SimulationConfig(seed=3, trials_scale=0.004,
                               min_jobs_per_class=1)
        jobs1, _ = ClusterSimulator(cfg).generate(n_jobs=1)
        jobs0, _ = ClusterSimulator(cfg).generate()
        assert all(a.record == b.record for a, b in zip(jobs0, jobs1))


# ----------------------------------------------------------------------
# perf harness
# ----------------------------------------------------------------------
class TestPerfHarness:
    def test_measure_schema(self):
        calls = []
        result = measure(lambda: calls.append(1), bench="noop",
                         n_samples=10, config={"k": 1},
                         warmup=2, repeats=3)
        assert len(calls) == 5
        assert result.bench == "noop"
        assert result.p50_s >= 0 and result.p95_s >= result.p50_s
        assert result.samples_per_s > 0
        d = result.to_dict()
        assert set(d) == {"bench", "config", "samples_per_s",
                          "p50_s", "p95_s", "rss_mb"}

    def test_write_bench_json(self, tmp_path):
        import json

        path = write_bench_json(
            tmp_path / "BENCH_x.json",
            [BenchResult(bench="a", samples_per_s=1.0,
                         p50_s=0.1, p95_s=0.2, rss_mb=0.0)],
        )
        data = json.loads(path.read_text())
        assert data[0]["bench"] == "a"
        assert data[0]["p95_s"] == 0.2

    def test_cli_has_perf_bench(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["perf-bench", "--scale", "0.01", "--out-dir", "/tmp/x"])
        assert args.command == "perf-bench"
        assert args.scale == 0.01
