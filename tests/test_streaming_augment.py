"""Tests for the online classifier and the augmentation/resampling tools."""

import numpy as np
import pytest

from repro.core.streaming import OnlineWorkloadClassifier, StreamPrediction
from repro.data.augment import (
    jitter_augment,
    multi_window_resample,
    oversample_minority,
)


class _ConstantModel:
    """Predicts the mean of sensor 0, thresholded — order-able and cheap."""

    def predict(self, X):
        X = np.asarray(X)
        return (X[:, :, 0].mean(axis=1) > 0).astype(np.int64)


class TestOnlineClassifier:
    def _stream(self, window=30, hop=10, vote=3):
        return OnlineWorkloadClassifier(
            model=_ConstantModel(), window=window, hop=hop, vote_window=vote
        )

    def _samples(self, n, level=1.0, seed=0):
        rng = np.random.default_rng(seed)
        out = rng.normal(0, 0.1, size=(n, 7))
        out[:, 0] += level
        return out

    def test_no_emission_before_full_window(self):
        clf = self._stream(window=30)
        preds = clf.push(self._samples(29))
        assert preds == []
        assert not clf.ready

    def test_first_emission_at_full_window(self):
        clf = self._stream(window=30)
        preds = clf.push(self._samples(30))
        assert len(preds) == 1
        assert isinstance(preds[0], StreamPrediction)
        assert preds[0].sample_index == 30
        assert clf.ready

    def test_hop_cadence(self):
        clf = self._stream(window=30, hop=10)
        clf.push(self._samples(30))
        preds = clf.push(self._samples(25, seed=1))
        # 25 more samples at hop 10 -> 2 further emissions.
        assert len(preds) == 2

    def test_majority_smoothing(self):
        clf = self._stream(window=30, hop=10, vote=5)
        clf.push(self._samples(30, level=1.0))
        # Flip the signal: raw label flips quickly, smoothed label lags.
        preds = clf.push(self._samples(20, level=-1.0, seed=2))
        assert preds[-1].label == 0
        # The vote window still holds early 1-votes.
        assert preds[0].smoothed_label == 1

    def test_confidence_bounds(self):
        clf = self._stream()
        clf.push(self._samples(60))
        preds = clf.push(self._samples(30, seed=3))
        for p in preds:
            assert 0.0 < p.confidence <= 1.0

    def test_reset(self):
        clf = self._stream(window=30)
        clf.push(self._samples(35))
        clf.reset()
        assert not clf.ready
        assert clf.push(self._samples(29)) == []

    def test_sensor_count_validated(self):
        clf = self._stream()
        with pytest.raises(ValueError, match="sensors"):
            clf.push(np.zeros((5, 3)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            OnlineWorkloadClassifier(model=_ConstantModel(), window=0)
        with pytest.raises(TypeError):
            OnlineWorkloadClassifier(model=object())

    def test_bulk_push_matches_row_at_a_time(self):
        """One 2-D block push emits exactly what per-row pushes emit —
        the invariant behind the segment-sized fast path."""
        patterns = [
            [2000],                       # one huge block
            [90] * 20 + [17],             # tick-sized blocks + remainder
            [1, 2, 3, 5, 8, 13] * 40,     # ragged small blocks
            [540, 1, 539, 90, 830],       # window-straddling blocks
        ]
        for blocks in patterns:
            rng = np.random.default_rng(5)
            stream = rng.normal(0, 1.0, size=(sum(blocks), 7))
            bulk = self._stream(window=540, hop=90, vote=5)
            rowwise = self._stream(window=540, hop=90, vote=5)
            got, want = [], []
            pos = 0
            for n in blocks:
                chunk = stream[pos:pos + n]
                pos += n
                got.extend(bulk.push(chunk))
                for row in chunk:
                    want.extend(rowwise.push(row[None, :]))
            assert len(want) > 0
            assert [
                (p.sample_index, p.label, p.smoothed_label, p.confidence)
                for p in got
            ] == [
                (p.sample_index, p.label, p.smoothed_label, p.confidence)
                for p in want
            ], f"bulk push diverged for block pattern {blocks[:8]}..."

    def test_bulk_push_monitor_sees_every_row(self):
        """The bulk fast path must not skip per-row monitor taps."""
        class _Tap:
            def __init__(self):
                self.rows = []

            def update(self, row):
                self.rows.append(np.array(row))

        tap = _Tap()
        seen = tap.rows
        clf = OnlineWorkloadClassifier(
            model=_ConstantModel(), window=30, hop=10, monitor=tap,
        )
        rng = np.random.default_rng(6)
        stream = rng.normal(size=(95, 7))
        clf.push(stream)
        assert len(seen) == 95
        np.testing.assert_array_equal(np.vstack(seen), stream)

    def test_end_to_end_with_real_pipeline(self, challenge_suite_tiny):
        """A fitted RF pipeline classifying a simulated live stream."""
        from repro.models import make_rf_cov

        ds = challenge_suite_tiny["60-middle-1"]
        model = make_rf_cov(n_estimators=15).fit(ds.X_train, ds.y_train)
        clf = OnlineWorkloadClassifier(model=model, window=540, hop=270)
        trial = ds.X_test[0].astype(np.float64)
        preds = clf.push(trial)
        assert len(preds) >= 1
        assert 0 <= preds[-1].smoothed_label < 26


class TestMultiWindowResample:
    def test_shapes_and_labels(self, labelled_tiny):
        eligible = labelled_tiny.eligible(540)
        idx = np.arange(min(6, len(eligible)))
        X, y = multi_window_resample(eligible, idx, windows_per_trial=3,
                                     rng=0)
        assert X.shape == (idx.size * 3, 540, 7)
        np.testing.assert_array_equal(
            y, np.repeat(eligible.labels()[idx], 3))

    def test_windows_differ_within_trial(self, labelled_tiny):
        eligible = labelled_tiny.eligible(540)
        X, _ = multi_window_resample(eligible, np.array([0]),
                                     windows_per_trial=4, rng=1)
        assert not np.allclose(X[0], X[1])

    def test_deterministic(self, labelled_tiny):
        eligible = labelled_tiny.eligible(540)
        idx = np.arange(3)
        X1, _ = multi_window_resample(eligible, idx, rng=7)
        X2, _ = multi_window_resample(eligible, idx, rng=7)
        np.testing.assert_array_equal(X1, X2)

    def test_invalid_count(self, labelled_tiny):
        with pytest.raises(ValueError):
            multi_window_resample(labelled_tiny.eligible(540),
                                  np.array([0]), windows_per_trial=0)


class TestJitterAugment:
    def test_output_size(self):
        X = np.random.default_rng(0).normal(size=(4, 20, 7)).astype(np.float32)
        y = np.arange(4)
        Xa, ya = jitter_augment(X, y, copies=2, rng=0)
        assert Xa.shape == (12, 20, 7)
        np.testing.assert_array_equal(ya, np.concatenate([y, y, y]))

    def test_originals_preserved(self):
        X = np.random.default_rng(1).normal(size=(3, 10, 7)).astype(np.float32)
        y = np.arange(3)
        Xa, _ = jitter_augment(X, y, copies=1, rng=0)
        np.testing.assert_array_equal(Xa[:3], X)

    def test_copies_perturbed(self):
        X = np.random.default_rng(2).normal(size=(3, 10, 7)).astype(np.float32)
        Xa, _ = jitter_augment(X, np.arange(3), copies=1, noise_std=0.1, rng=0)
        assert not np.allclose(Xa[3:], X)

    def test_zero_copies_identity(self):
        X = np.ones((2, 5, 7), dtype=np.float32)
        Xa, ya = jitter_augment(X, np.arange(2), copies=0)
        assert Xa.shape == X.shape


class TestOversample:
    def test_balances_classes(self):
        X = np.random.default_rng(0).normal(size=(30, 4))
        y = np.array([0] * 25 + [1] * 5)
        Xb, yb = oversample_minority(X, y, rng=0)
        _, counts = np.unique(yb, return_counts=True)
        assert counts[0] == counts[1] == 25

    def test_rows_come_from_source(self):
        X = np.arange(20, dtype=float).reshape(10, 2)
        y = np.array([0] * 8 + [1] * 2)
        Xb, yb = oversample_minority(X, y, rng=1)
        minority_rows = Xb[yb == 1]
        for row in minority_rows:
            assert any(np.array_equal(row, x) for x in X[8:])

    def test_already_balanced_unchanged_size(self):
        X = np.zeros((10, 2))
        y = np.repeat([0, 1], 5)
        Xb, yb = oversample_minority(X, y, rng=0)
        assert len(yb) == 10
