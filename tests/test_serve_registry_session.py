"""Serving subsystem tests: model registry and streaming sessions."""

import numpy as np
import pytest

from repro.core.streaming import OnlineWorkloadClassifier
from repro.serve import ModelRegistry, StreamSession


class _ConstantModel:
    """Thresholds the mean of sensor 0 — cheap, deterministic, picklable."""

    def predict(self, X):
        X = np.asarray(X)
        return (X[:, :, 0].mean(axis=1) > 0).astype(np.int64)


def _samples(n, level=1.0, seed=0):
    rng = np.random.default_rng(seed)
    out = rng.normal(0, 0.1, size=(n, 7))
    out[:, 0] += level
    return out


class TestModelRegistry:
    def test_round_trip_fitted_rf_cov(self, challenge_suite_tiny, tmp_path):
        from repro.models import make_rf_cov

        ds = challenge_suite_tiny["60-random-1"]
        pipe = make_rf_cov(n_estimators=5, random_state=0)
        pipe.fit(ds.X_train, ds.y_train)
        registry = ModelRegistry(tmp_path / "registry")
        version = registry.register("rf_cov", pipe)
        assert version == 1
        loaded = registry.get("rf_cov")
        np.testing.assert_array_equal(
            loaded.predict(ds.X_test), pipe.predict(ds.X_test))

    def test_versions_auto_increment(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert registry.register("m", _ConstantModel()) == 1
        assert registry.register("m", _ConstantModel()) == 2
        assert registry.register("m", _ConstantModel(), version=7) == 7
        assert registry.versions("m") == [1, 2, 7]
        assert registry.latest_version("m") == 7
        assert registry.names() == ["m"]
        assert "m" in registry and "ghost" not in registry

    def test_get_specific_and_unknown(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.register("m", _ConstantModel())
        assert registry.get("m", version=1) is not None
        with pytest.raises(KeyError, match="version 9"):
            registry.get("m", version=9)
        with pytest.raises(KeyError, match="ghost"):
            registry.get("ghost")

    def test_warm_lru_eviction(self, tmp_path):
        registry = ModelRegistry(tmp_path, warm_capacity=2)
        for name in ("a", "b", "c"):
            registry.register(name, _ConstantModel())
        registry.get("a")
        registry.get("b")
        assert registry.warm_count == 2
        registry.get("a")              # refresh a; b is now LRU
        registry.get("c")              # evicts b
        assert registry.warm_count == 2
        misses = registry.misses
        registry.get("a")              # still warm
        assert registry.misses == misses
        registry.get("b")              # cold again
        assert registry.misses == misses + 1

    def test_warm_hit_skips_disk(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.register("m", _ConstantModel())
        first = registry.get("m")
        assert registry.get("m") is first
        assert registry.hits == 1 and registry.misses == 1

    def test_reregister_invalidates_warm_copy(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.register("m", _ConstantModel(), version=1)
        old = registry.get("m")
        registry.register("m", _ConstantModel(), version=1)
        assert registry.get("m") is not old

    def test_rejects_bad_names(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for bad in ("", "a/b", "../up", "a b"):
            with pytest.raises(ValueError, match="model name"):
                registry.register(bad, _ConstantModel())


class TestStreamSession:
    def _run_session(self, data, chunk, model, **kwargs):
        session = StreamSession("job", **kwargs)
        preds = []
        for i in range(0, data.shape[0], chunk):
            for req in session.push(data[i: i + chunk]):
                label = int(np.asarray(model.predict(req.window[None]))[0])
                preds.append(session.complete(req, label))
        return preds

    @pytest.mark.parametrize("chunk", [1, 7, 30, 200])
    def test_matches_online_classifier_exactly(self, chunk):
        """Serial push/complete reproduces OnlineWorkloadClassifier's
        emissions bit for bit — the semantics contract of the subsystem."""
        model = _ConstantModel()
        rng = np.random.default_rng(5)
        data = rng.normal(0, 1.0, size=(500, 7))
        online = OnlineWorkloadClassifier(
            model=model, window=60, hop=20, vote_window=3)
        expected = []
        for i in range(0, data.shape[0], chunk):
            expected.extend(online.push(data[i: i + chunk]))
        got = self._run_session(data, chunk, model,
                                window=60, hop=20, vote_window=3)
        assert got == expected

    def test_no_request_before_full_window(self):
        session = StreamSession("j", window=30, hop=10)
        assert session.push(_samples(29)) == []
        assert not session.ready

    def test_request_cadence_and_seq(self):
        session = StreamSession("j", window=30, hop=10, vote_window=3)
        reqs = session.push(_samples(55))
        # Full at 30, then hops at 40 and 50 -> 3 requests.
        assert [r.seq for r in reqs] == [0, 1, 2]
        assert [r.sample_index for r in reqs] == [30, 40, 50]
        assert session.pending == 3
        assert all(r.window.shape == (30, 7) for r in reqs)

    def test_window_snapshots_are_independent(self):
        session = StreamSession("j", window=10, hop=5)
        (first,) = session.push(_samples(10, level=1.0))
        (second,) = session.push(_samples(5, level=-1.0, seed=1))
        assert not np.array_equal(first.window, second.window)
        assert first.window[:, 0].mean() > 0.5       # unaffected by later rows

    def test_complete_updates_vote(self):
        session = StreamSession("j", window=10, hop=5, vote_window=3)
        reqs = session.push(_samples(20))
        assert len(reqs) == 3 and session.pending == 3
        p1 = session.complete(reqs[0], 4)
        assert (p1.label, p1.smoothed_label, p1.confidence) == (4, 4, 1.0)
        p2 = session.complete(reqs[1], 2)
        assert p2.smoothed_label in (2, 4) and p2.confidence == 0.5
        assert session.pending == 1

    def test_complete_guards(self):
        session = StreamSession("j", window=10, hop=5)
        (req,) = session.push(_samples(10))
        other = StreamSession("other", window=10, hop=5)
        other.push(_samples(10))
        with pytest.raises(ValueError, match="session"):
            other.complete(req, 0)
        session.complete(req, 0)
        with pytest.raises(RuntimeError, match="pending"):
            session.complete(req, 0)

    def test_reset_clears_state(self):
        session = StreamSession("j", window=10, hop=5)
        session.push(_samples(12))
        session.reset()
        assert not session.ready
        assert session.pending == 0
        assert session.n_seen == 0
        assert session.push(_samples(9)) == []

    def test_sensor_count_validated(self):
        session = StreamSession("j", window=10)
        with pytest.raises(ValueError, match="sensors"):
            session.push(np.zeros((3, 5)))

    def test_empty_push_is_noop(self):
        session = StreamSession("j", window=10)
        assert session.push(np.empty((0, 7))) == []
        assert session.n_seen == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match=">= 1"):
            StreamSession("j", window=0)
        with pytest.raises(ValueError, match=">= 1"):
            StreamSession("j", hop=0)


class TestRegistryLatestMemoAndActivePointer:
    def test_latest_version_memoized_no_rescan(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.register("m", _ConstantModel())
        assert registry.latest_version("m") == 1    # scan populates memo
        # An external writer drops a new version behind the registry's
        # back: the memo intentionally keeps answering 1 until invalidated.
        (tmp_path / "m" / "v9.pkl").write_bytes(
            (tmp_path / "m" / "v1.pkl").read_bytes())
        assert registry.latest_version("m") == 1
        registry.invalidate("m")
        assert registry.latest_version("m") == 9
        registry.invalidate()                       # all-names form
        assert registry.latest_version("m") == 9

    def test_register_keeps_memo_coherent(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.register("m", _ConstantModel())
        assert registry.latest_version("m") == 1
        registry.register("m", _ConstantModel())    # memo bumps, no rescan
        assert registry.latest_version("m") == 2
        registry.register("m", _ConstantModel(), version=7)
        assert registry.latest_version("m") == 7
        registry.register("m", _ConstantModel(), version=3)  # backfill
        assert registry.latest_version("m") == 7    # memo never regresses

    def test_latest_version_unknown_name(self, tmp_path):
        with pytest.raises(KeyError, match="ghost"):
            ModelRegistry(tmp_path).latest_version("ghost")

    def test_active_pointer_flip_and_fallback(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.register("m", _ConstantModel())
        registry.register("m", _ConstantModel())
        assert registry.active_version("m") == 2    # latest when unset
        registry.set_active("m", 1)
        assert registry.active_version("m") == 1
        assert registry.get_active("m") is registry.get("m", version=1)
        with pytest.raises(KeyError, match="version 5"):
            registry.set_active("m", 5)
        # Stale pointer (active version's pickle deleted) falls back.
        (tmp_path / "m" / "v1.pkl").unlink()
        registry.invalidate("m")
        assert registry.active_version("m") == 2


class TestOnlineClassifierMonitorHook:
    def test_monitor_sees_every_row(self):
        class _Recorder:
            """Counts rows forwarded by the classifier."""

            def __init__(self):
                self.rows = []

            def update(self, row):
                self.rows.append(np.asarray(row).copy())

        recorder = _Recorder()
        clf = OnlineWorkloadClassifier(
            model=_ConstantModel(), window=10, hop=5, monitor=recorder)
        stream = _samples(23, 1.0, seed=3)
        clf.push(stream)
        assert len(recorder.rows) == 23
        np.testing.assert_array_equal(np.stack(recorder.rows), stream)

    def test_monitor_without_update_rejected(self):
        with pytest.raises(TypeError, match="update"):
            OnlineWorkloadClassifier(model=_ConstantModel(), monitor=object())
