"""Tests for decision trees, random forests and gradient boosting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.boosting import (
    BoostingTree,
    GradientBoostingClassifier,
    softmax_cross_entropy_grad_hess,
    softmax_proba,
)
from repro.ml.boosting.losses import log_loss
from repro.ml.ensemble import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.tree.decision_tree import best_split_gini


class TestBestSplitGini:
    def test_finds_clean_split(self):
        x = np.array([0.0, 1.0, 2.0, 10.0, 11.0, 12.0])
        y = np.eye(2)[np.array([0, 0, 0, 1, 1, 1])]
        thr, score = best_split_gini(x, y, min_samples_leaf=1)
        assert 2.0 < thr < 10.0
        assert score == pytest.approx(0.0)

    def test_constant_feature_none(self):
        x = np.ones(6)
        y = np.eye(2)[np.array([0, 1, 0, 1, 0, 1])]
        assert best_split_gini(x, y, 1) is None

    def test_min_samples_leaf_respected(self):
        x = np.arange(10, dtype=float)
        y = np.eye(2)[np.array([0] * 9 + [1])]
        # A leaf minimum of 3 forbids isolating the single positive.
        res = best_split_gini(x, y, min_samples_leaf=3)
        if res is not None:
            thr, _ = res
            assert np.sum(x > thr) >= 3 and np.sum(x <= thr) >= 3

    def test_threshold_between_values(self):
        x = np.array([1.0, 2.0])
        y = np.eye(2)[np.array([0, 1])]
        thr, _ = best_split_gini(x, y, 1)
        assert thr == pytest.approx(1.5)


class TestDecisionTree:
    def test_fits_blobs(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        tree = DecisionTreeClassifier().fit(Xtr, ytr)
        assert tree.score(Xte, yte) > 0.85
        assert tree.score(Xtr, ytr) == 1.0  # unpruned memorizes

    def test_max_depth_limits(self, blobs_split):
        Xtr, ytr, _, _ = blobs_split
        tree = DecisionTreeClassifier(max_depth=2).fit(Xtr, ytr)
        assert tree.depth_ <= 2

    def test_min_samples_leaf(self, blobs_split):
        Xtr, ytr, _, _ = blobs_split
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(Xtr, ytr)
        # Every leaf's training support must be >= 10: check by counting
        # samples routed to each leaf.
        leaves = tree._leaf_indices(Xtr)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 10

    def test_predict_proba_rows_sum_to_one(self, blobs_split):
        Xtr, ytr, Xte, _ = blobs_split
        tree = DecisionTreeClassifier(max_depth=4).fit(Xtr, ytr)
        proba = tree.predict_proba(Xte)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_non_contiguous_labels(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(i * 4, 0.5, (15, 2)) for i in range(2)])
        y = np.repeat([3, 17], 15)
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(np.unique(tree.predict(X))) <= {3, 17}

    def test_single_sample_class(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0]])
        y = np.array([0, 0, 0, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.predict(np.array([[10.0]]))[0] == 1

    def test_feature_count_validation(self, blobs_split):
        Xtr, ytr, _, _ = blobs_split
        tree = DecisionTreeClassifier().fit(Xtr, ytr)
        with pytest.raises(ValueError, match="features"):
            tree.predict(Xtr[:, :3])

    def test_max_features_sqrt(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        tree = DecisionTreeClassifier(max_features="sqrt", random_state=0)
        tree.fit(Xtr, ytr)
        assert tree.score(Xte, yte) > 0.6

    def test_invalid_params(self, blobs_split):
        Xtr, ytr, _, _ = blobs_split
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0).fit(Xtr, ytr)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=99).fit(Xtr, ytr)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_property_training_fit_unbounded(self, seed):
        """An unpruned tree on distinct points achieves zero training error."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 3))
        y = rng.integers(0, 3, size=30)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0


class TestRandomForest:
    def test_beats_stump(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        stump = DecisionTreeClassifier(max_depth=1).fit(Xtr, ytr)
        forest = RandomForestClassifier(n_estimators=30, random_state=0)
        forest.fit(Xtr, ytr)
        assert forest.score(Xte, yte) >= stump.score(Xte, yte)

    def test_oob_score_close_to_test(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        forest = RandomForestClassifier(
            n_estimators=50, oob_score=True, random_state=0
        ).fit(Xtr, ytr)
        assert abs(forest.oob_score_ - forest.score(Xte, yte)) < 0.2

    def test_deterministic_with_seed(self, blobs_split):
        Xtr, ytr, Xte, _ = blobs_split
        a = RandomForestClassifier(n_estimators=10, random_state=3).fit(Xtr, ytr)
        b = RandomForestClassifier(n_estimators=10, random_state=3).fit(Xtr, ytr)
        np.testing.assert_array_equal(a.predict(Xte), b.predict(Xte))

    def test_predict_proba_normalized(self, blobs_split):
        Xtr, ytr, Xte, _ = blobs_split
        forest = RandomForestClassifier(n_estimators=10).fit(Xtr, ytr)
        proba = forest.predict_proba(Xte)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_feature_importances_sum_to_one(self, blobs_split):
        Xtr, ytr, _, _ = blobs_split
        forest = RandomForestClassifier(n_estimators=10).fit(Xtr, ytr)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_no_bootstrap(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        forest = RandomForestClassifier(
            n_estimators=10, bootstrap=False, random_state=0
        ).fit(Xtr, ytr)
        assert forest.score(Xte, yte) > 0.85

    def test_invalid_n_estimators(self, blobs_split):
        Xtr, ytr, _, _ = blobs_split
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0).fit(Xtr, ytr)


class TestSoftmaxLoss:
    def test_proba_rows_sum_to_one(self):
        m = np.random.default_rng(0).normal(size=(10, 4))
        p = softmax_proba(m)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)

    def test_stability_large_margins(self):
        m = np.array([[1000.0, 0.0], [-1000.0, 0.0]])
        p = softmax_proba(m)
        assert np.all(np.isfinite(p))

    def test_gradient_zero_at_perfect_prediction(self):
        m = np.array([[100.0, 0.0, 0.0]])
        g, h = softmax_cross_entropy_grad_hess(m, np.array([0]))
        np.testing.assert_allclose(g, 0.0, atol=1e-10)

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(1)
        m = rng.normal(size=(6, 3))
        y = rng.integers(0, 3, 6)
        g, _ = softmax_cross_entropy_grad_hess(m, y)
        eps = 1e-6
        for i in (0, 3):
            for c in range(3):
                m_p = m.copy(); m_p[i, c] += eps
                m_m = m.copy(); m_m[i, c] -= eps
                fd = (log_loss(m_p, y) - log_loss(m_m, y)) / (2 * eps) * len(y)
                assert g[i, c] == pytest.approx(fd, abs=1e-4)

    def test_hessian_positive(self):
        m = np.random.default_rng(2).normal(size=(5, 3))
        _, h = softmax_cross_entropy_grad_hess(m, np.array([0, 1, 2, 0, 1]))
        assert np.all(h > 0)

    def test_label_range_check(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy_grad_hess(np.zeros((2, 3)), np.array([0, 5]))


class TestBoostingTree:
    def test_fits_residuals(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(100, 2))
        g = np.where(X[:, 0] > 0, 1.0, -1.0)
        h = np.ones(100)
        tree = BoostingTree(max_depth=2, reg_lambda=1.0).fit(X, g, h)
        pred = tree.predict(X)
        # Leaf weight is -G/(H+lambda): should oppose the gradient sign.
        assert np.corrcoef(pred, -g)[0, 1] > 0.9

    def test_gamma_prunes(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(50, 2))
        g = rng.normal(0, 0.01, size=50)  # nearly no signal
        h = np.ones(50)
        free = BoostingTree(max_depth=4, gamma=0.0).fit(X, g, h)
        pruned = BoostingTree(max_depth=4, gamma=10.0).fit(X, g, h)
        assert np.sum(pruned.feature_ >= 0) <= np.sum(free.feature_ >= 0)

    def test_l1_shrinks_leaves(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(60, 2))
        g = np.where(X[:, 0] > 0, 0.5, -0.5)
        h = np.ones(60)
        plain = BoostingTree(max_depth=2, reg_alpha=0.0).fit(X, g, h)
        l1 = BoostingTree(max_depth=2, reg_alpha=20.0).fit(X, g, h)
        assert np.abs(l1.weight_).max() <= np.abs(plain.weight_).max() + 1e-12

    def test_split_gains_accumulate(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(80, 3))
        g = np.where(X[:, 1] > 0, 1.0, -1.0)
        tree = BoostingTree(max_depth=2).fit(X, g, np.ones(80))
        assert tree.split_gains_[1] > tree.split_gains_[0]
        assert tree.split_gains_[1] > tree.split_gains_[2]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BoostingTree(max_depth=0)
        with pytest.raises(ValueError):
            BoostingTree(colsample=0.0)


class TestGradientBoostingClassifier:
    def test_fits_blobs(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        clf = GradientBoostingClassifier(n_estimators=10, max_depth=3)
        clf.fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.9

    def test_eval_history(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        clf = GradientBoostingClassifier(n_estimators=8, max_depth=3)
        clf.fit(Xtr, ytr, eval_set=(Xte, yte))
        h = clf.evals_result_
        assert len(h["train_accuracy"]) == 8
        # Training loss decreases over rounds.
        assert h["train_logloss"][-1] < h["train_logloss"][0]

    def test_staged_accuracy_matches_final(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        clf = GradientBoostingClassifier(n_estimators=6, max_depth=3)
        clf.fit(Xtr, ytr)
        staged = clf.staged_accuracy(Xte, yte)
        assert staged.shape == (6,)
        assert staged[-1] == pytest.approx(clf.score(Xte, yte))

    def test_n_rounds_prefix_prediction(self, blobs_split):
        Xtr, ytr, Xte, _ = blobs_split
        clf = GradientBoostingClassifier(n_estimators=6, max_depth=3)
        clf.fit(Xtr, ytr)
        p3 = clf.predict(Xte, n_rounds=3)
        staged = clf.staged_accuracy(Xte, clf.predict(Xte, n_rounds=3))
        assert staged[2] == 1.0  # predictions after 3 rounds match themselves

    def test_feature_importances(self, blobs_split):
        Xtr, ytr, _, _ = blobs_split
        clf = GradientBoostingClassifier(n_estimators=5, max_depth=3)
        clf.fit(Xtr, ytr)
        imp = clf.feature_importances_
        assert imp.shape == (Xtr.shape[1],)
        assert imp.sum() == pytest.approx(1.0)
        assert np.all(imp >= 0)

    def test_regularization_reduces_overfit_gap(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        loose = GradientBoostingClassifier(n_estimators=10, max_depth=5,
                                           reg_lambda=0.01)
        tight = GradientBoostingClassifier(n_estimators=10, max_depth=5,
                                           reg_lambda=50.0, gamma=0.5)
        loose.fit(Xtr, ytr)
        tight.fit(Xtr, ytr)
        gap_loose = loose.score(Xtr, ytr) - loose.score(Xte, yte)
        gap_tight = tight.score(Xtr, ytr) - tight.score(Xte, yte)
        assert gap_tight <= gap_loose + 0.05

    def test_predict_proba(self, blobs_split):
        Xtr, ytr, Xte, _ = blobs_split
        clf = GradientBoostingClassifier(n_estimators=4).fit(Xtr, ytr)
        proba = clf.predict_proba(Xte)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_invalid_learning_rate(self, blobs_split):
        Xtr, ytr, _, _ = blobs_split
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0).fit(Xtr, ytr)
