"""Crash-safety tests: checkpoint/resume bit-identity (in-process injected
faults and real SIGKILLed subprocesses) and registry survival of killed
writers, including warm-LRU coherence."""

import pickle
import signal
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.training import (
    TrainingCheckpoint,
    collect_forward_rng_states,
    load_checkpoint,
    restore_forward_rng_states,
    save_checkpoint,
)
from repro.resilience import FaultSpec, InjectedFault, inject
from repro.resilience.bench import (
    _StubModel,
    _build_trainer,
    _crash_registry_worker,
    _crash_training_worker,
    _run_to_sigkill,
)
from repro.serve.registry import ModelRegistry

# Tiny synthetic problem: 24 samples, 6 timesteps, 3 sensors, 3 classes,
# batch 8 -> 3 batches/epoch.  Small enough for subprocess SIGKILL tests
# on a single-core runner.
_N, _T, _D, _K = 24, 6, 3, 3
_BATCHES_PER_EPOCH = 3


def _tiny_payload(max_epochs=5, **overrides):
    """Trainer payload + data for repro.resilience.bench._build_trainer."""
    rng = np.random.default_rng(0)
    payload = {
        "n_sensors": _D,
        "seq_len": _T,
        "n_classes": _K,
        "hidden_size": 4,
        "seed": 7,
        "lr": 5e-3,
        "cycle_len": 3,
        "batch_size": 8,
        "max_epochs": max_epochs,
        "patience": 10,
        "X_train": rng.standard_normal((_N, _T, _D)).astype(np.float32),
        "y_train": rng.integers(0, _K, _N),
        "X_val": rng.standard_normal((12, _T, _D)).astype(np.float32),
        "y_val": rng.integers(0, _K, 12),
    }
    payload.update(overrides)
    return payload


def _data(payload):
    return (payload["X_train"], payload["y_train"],
            payload["X_val"], payload["y_val"])


def _interrupted_then_resumed(payload, kill_hits, ckpt, *,
                              checkpoint_every=1):
    """Fit with in-process injected kills at ``kill_hits``; resume after
    each; return the final (stitched) history and surviving trainer."""
    trainer = _build_trainer(payload)
    for hit in kill_hits:
        with inject(FaultSpec("trainer.mid_epoch", at_hit=hit, mode="raise")):
            with pytest.raises(InjectedFault):
                if ckpt.is_file():
                    trainer.resume(str(ckpt), *_data(payload),
                                   checkpoint_every=checkpoint_every)
                else:
                    trainer.fit(*_data(payload), checkpoint_path=str(ckpt),
                                checkpoint_every=checkpoint_every)
        trainer = _build_trainer(payload)  # fresh process equivalent
    if ckpt.is_file():
        history = trainer.resume(str(ckpt), *_data(payload),
                                 checkpoint_every=checkpoint_every)
    else:  # killed before the first checkpoint ever landed
        history = trainer.fit(*_data(payload), checkpoint_path=str(ckpt),
                              checkpoint_every=checkpoint_every)
    return history, trainer


def _hit(kill_epoch, start_epoch=0, batch=2):
    """trainer.mid_epoch hit count for dying in ``batch`` of ``kill_epoch``."""
    return (kill_epoch - start_epoch - 1) * _BATCHES_PER_EPOCH + batch


class TestCheckpointFile:
    def _checkpoint(self, payload, ckpt_path):
        trainer = _build_trainer(payload)
        trainer.fit(*_data(payload), checkpoint_path=str(ckpt_path))
        return load_checkpoint(ckpt_path)

    def test_round_trip(self, tmp_path):
        payload = _tiny_payload(max_epochs=3)
        ckpt = self._checkpoint(payload, tmp_path / "t.ckpt")
        assert ckpt.epoch == 3
        assert len(ckpt.history.epochs) == 3
        assert set(ckpt.rng_states) == {"shuffle", "forward"}
        assert "t" in ckpt.optimizer_state  # Adam step count captured
        assert ckpt.scheduler_state["step_count"] == 3

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        payload = _tiny_payload(max_epochs=2)
        path = tmp_path / "t.ckpt"
        self._checkpoint(payload, path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"definitely not a pickle")
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_checkpoint(path)
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "missing.ckpt")

    def test_wrong_payload_type_rejected(self, tmp_path):
        body = pickle.dumps(["not", "a", "checkpoint"])
        header = {"magic": "repro-checkpoint-v1", "repro_version": "x",
                  "crc32": zlib.crc32(body), "body": body}
        path = tmp_path / "t.ckpt"
        path.write_bytes(pickle.dumps(header))
        with pytest.raises(ValueError, match="TrainingCheckpoint"):
            load_checkpoint(path)

    def test_forward_rng_mismatch_raises(self):
        payload = _tiny_payload()
        model = _build_trainer(payload).model
        states = collect_forward_rng_states(model)
        assert states  # the LSTM classifier has at least one dropout RNG
        with pytest.raises(KeyError, match="RNG module mismatch"):
            restore_forward_rng_states(model, {"bogus.module": {}})


class TestResumeBitIdentical:
    @pytest.mark.parametrize("kill_epoch", [2, 4])
    def test_single_preemption(self, tmp_path, kill_epoch):
        payload = _tiny_payload()
        fault_free = _build_trainer(payload)
        history_free = fault_free.fit(*_data(payload))

        history, survivor = _interrupted_then_resumed(
            payload, [_hit(kill_epoch)], tmp_path / "t.ckpt"
        )
        assert history_free.matches(history)
        for key, value in fault_free.model.state_dict().items():
            np.testing.assert_array_equal(value, survivor.model.state_dict()[key])

    def test_kill_before_first_checkpoint(self, tmp_path):
        # Dying in epoch 1 leaves no checkpoint; a fresh fit must still
        # reproduce the fault-free history (all state rebuilds from seeds).
        payload = _tiny_payload()
        history_free = _build_trainer(payload).fit(*_data(payload))
        history, _ = _interrupted_then_resumed(
            payload, [_hit(1)], tmp_path / "t.ckpt"
        )
        assert history_free.matches(history)

    def test_chained_preemptions(self, tmp_path):
        # Die at epoch 2, resume, die again at epoch 4, resume, finish.
        payload = _tiny_payload(max_epochs=6)
        history_free = _build_trainer(payload).fit(*_data(payload))
        # Second kill happens inside a resume from epoch 2's checkpoint.
        hits = [_hit(2), _hit(4, start_epoch=2)]
        history, _ = _interrupted_then_resumed(
            payload, hits, tmp_path / "t.ckpt"
        )
        assert history_free.matches(history)

    def test_sparse_checkpointing(self, tmp_path):
        # checkpoint_every=2: a kill in epoch 5 resumes from epoch 4's
        # checkpoint and replays nothing it shouldn't.
        payload = _tiny_payload(max_epochs=6)
        history_free = _build_trainer(payload).fit(*_data(payload))
        history, _ = _interrupted_then_resumed(
            payload, [_hit(5)], tmp_path / "t.ckpt", checkpoint_every=2
        )
        assert history_free.matches(history)
        assert load_checkpoint(tmp_path / "t.ckpt").epoch == 6  # stop epoch

    @settings(max_examples=6, deadline=None)
    @given(kill_epoch=st.integers(2, 5), batch=st.integers(1, 3))
    def test_resume_reproduces_history_property(self, tmp_path_factory,
                                                kill_epoch, batch):
        # Property: wherever the kill lands (any epoch, any batch), the
        # stitched history equals the uninterrupted one bit for bit.
        payload = _tiny_payload()
        history_free = _build_trainer(payload).fit(*_data(payload))
        workdir = tmp_path_factory.mktemp("resume-prop")
        history, _ = _interrupted_then_resumed(
            payload, [_hit(kill_epoch, batch=batch)], workdir / "t.ckpt"
        )
        assert history_free.matches(history)


class TestSigkillSubprocess:
    def test_training_sigkilled_then_resumed_matches(self, tmp_path):
        # A real SIGKILL (no unwinding, no atexit) mid-epoch 3; the parent
        # resumes from the surviving checkpoint.
        payload = _tiny_payload()
        history_free = _build_trainer(payload).fit(*_data(payload))

        ckpt = tmp_path / "t.ckpt"
        child = dict(payload)
        child.update({"checkpoint_path": str(ckpt), "resume": False,
                      "kill_hit": _hit(3)})
        assert _run_to_sigkill(_crash_training_worker, child, timeout_s=120.0)
        assert load_checkpoint(ckpt).epoch == 2

        survivor = _build_trainer(payload)
        history = survivor.resume(str(ckpt), *_data(payload))
        assert history_free.matches(history)

    def test_save_model_sigkilled_mid_write_serves_prior_version(self, tmp_path):
        root = tmp_path / "registry"
        registry = ModelRegistry(root)
        registry.register("clf", _StubModel(1, b"a" * 2048), version=1)

        died = _run_to_sigkill(_crash_registry_worker, {
            "root": str(root), "op": "register", "name": "clf", "version": 2,
            "point": "persist.mid_write", "model": _StubModel(2, b"b" * 2048),
        }, timeout_s=120.0)
        assert died

        fresh = ModelRegistry(root)  # restarted server's view
        assert fresh.versions("clf") == [1]
        assert fresh.get("clf").version == 1  # no ValueError from a torn file
        # The kill left tmp litter, which readers must not mistake for a
        # version file.
        assert any(p.suffix == ".tmp" for p in (root / "clf").iterdir())

    def test_set_active_sigkilled_before_flip_keeps_old_pointer(self, tmp_path):
        root = tmp_path / "registry"
        registry = ModelRegistry(root)
        registry.register("clf", _StubModel(1), version=1)
        registry.register("clf", _StubModel(2), version=2)
        registry.set_active("clf", 1)

        died = _run_to_sigkill(_crash_registry_worker, {
            "root": str(root), "op": "set_active", "name": "clf", "version": 2,
            "point": "registry.before_active_flip",
        }, timeout_s=120.0)
        assert died

        fresh = ModelRegistry(root)
        assert fresh.active_version("clf") == 1
        assert fresh.get_active("clf").version == 1

    def test_warm_lru_coherent_across_writer_crash(self, tmp_path):
        root = tmp_path / "registry"
        registry = ModelRegistry(root)
        registry.register("clf", _StubModel(1, b"a" * 2048), version=1)
        registry.set_active("clf", 1)
        assert registry.get_active("clf").version == 1  # warm the LRU
        assert registry.warm_count == 1

        assert _run_to_sigkill(_crash_registry_worker, {
            "root": str(root), "op": "register", "name": "clf", "version": 2,
            "point": "persist.mid_write", "model": _StubModel(2, b"b" * 2048),
        }, timeout_s=120.0)

        # The crashed writer never produced v2, so the warm copy of v1 is
        # still the truth: served from cache, no disk re-read, no error.
        hits_before = registry.hits
        assert registry.get_active("clf").version == 1
        assert registry.hits == hits_before + 1

        # Once a healthy writer lands v2 and promotes it, the cache keyed
        # by (name, version) serves the new model — no stale v1 answer.
        registry.register("clf", _StubModel(2, b"b" * 2048), version=2)
        registry.set_active("clf", 2)
        assert registry.get_active("clf").version == 2
        # v1 stays warm under its own key, coherent for pinned readers.
        assert registry.get("clf", 1).version == 1


class TestStateDictRoundTrips:
    def _model_pair(self):
        payload = _tiny_payload()
        return _build_trainer(payload).model, _build_trainer(payload).model

    def test_named_modules_prefixes_cover_parameters(self):
        model, _ = self._model_pair()
        names = dict(model.named_modules())
        assert names[""] is model
        for pname in dict(model.named_parameters()):
            owner = pname.rsplit(".", 1)[0] if "." in pname else ""
            assert owner in names

    def test_adam_round_trip_preserves_trajectory(self):
        from repro.nn.optim.adam import Adam

        model_a, model_b = self._model_pair()
        opt_a = Adam(model_a.parameters(), lr=1e-2)
        opt_b = Adam(model_b.parameters(), lr=1e-2)
        rng = np.random.default_rng(1)
        grads = [rng.standard_normal(p.data.shape).astype(p.data.dtype)
                 for p in opt_a.params]

        def step(opt):
            for p, g in zip(opt.params, grads):
                p.grad = g.copy()
            opt.step()

        step(opt_a)
        opt_b.load_state_dict(opt_a.state_dict())
        for pa, pb in zip(opt_a.params, opt_b.params):
            pb.data = pa.data.copy()
        step(opt_a)
        step(opt_b)
        for pa, pb in zip(opt_a.params, opt_b.params):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_sgd_round_trip_preserves_velocity(self):
        from repro.nn.optim.sgd import SGD

        model_a, model_b = self._model_pair()
        opt_a = SGD(model_a.parameters(), lr=1e-2, momentum=0.9)
        opt_b = SGD(model_b.parameters(), lr=1e-2, momentum=0.9)
        grads = [np.ones_like(p.data) for p in opt_a.params]

        def step(opt):
            for p, g in zip(opt.params, grads):
                p.grad = g.copy()
            opt.step()

        step(opt_a)
        opt_b.load_state_dict(opt_a.state_dict())
        for pa, pb in zip(opt_a.params, opt_b.params):
            pb.data = pa.data.copy()
        step(opt_a)
        step(opt_b)
        for pa, pb in zip(opt_a.params, opt_b.params):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_optimizer_moment_count_mismatch_rejected(self):
        from repro.nn.optim.adam import Adam
        from repro.nn.module import Parameter

        opt = Adam([Parameter(np.zeros(3, dtype=np.float32))], lr=1e-3)
        state = opt.state_dict()
        state["m"] = state["m"] + state["m"]
        state["v"] = state["v"] + state["v"]
        with pytest.raises(ValueError, match="mismatch"):
            opt.load_state_dict(state)

    def test_scheduler_round_trip_resumes_cosine_position(self):
        from repro.nn.module import Parameter
        from repro.nn.optim.schedulers import CyclicCosineLR
        from repro.nn.optim.sgd import SGD

        def fresh():
            opt = SGD([Parameter(np.zeros(2, dtype=np.float32))], lr=1e-2)
            return opt, CyclicCosineLR(opt, cycle_len=4)

        opt_a, sched_a = fresh()
        for _ in range(3):
            sched_a.step()
        opt_b, sched_b = fresh()
        sched_b.load_state_dict(sched_a.state_dict())
        opt_b.load_state_dict(opt_a.state_dict())
        # Bit-identical continuation, including the np.float64 lr type
        # (NEP 50: coercing to Python float shifts float32 math by 1 ulp).
        assert type(opt_b.lr) is type(opt_a.lr)
        assert sched_a.step() == sched_b.step()
        assert opt_a.lr == opt_b.lr

    def test_sigkill_exitcode_contract(self):
        # _run_to_sigkill distinguishes a SIGKILL death from a clean exit;
        # guard the sign convention the crash tests above rely on.
        assert -signal.SIGKILL == -9
