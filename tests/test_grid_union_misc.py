"""Union parameter grids, estimator scores, and harness arg validation."""

import numpy as np
import pytest

from repro.ml.model_selection import GridSearchCV, ParameterGrid
from repro.ml.tree import DecisionTreeClassifier


class TestUnionGrids:
    def test_union_of_grids_in_search(self, blobs_split):
        """A list of grids searches the union of products — how one sweeps
        PCA and covariance pipelines in a single grid search."""
        Xtr, ytr, _, _ = blobs_split
        search = GridSearchCV(
            DecisionTreeClassifier(),
            [
                {"max_depth": [2, 6]},
                {"min_samples_leaf": [5], "max_depth": [4]},
            ],
            cv=3,
        ).fit(Xtr, ytr)
        assert len(search.cv_results_["params"]) == 3
        assert search.best_score_ > 0.7

    def test_param_grid_iteration_order_deterministic(self):
        combos1 = list(ParameterGrid({"b": [1, 2], "a": ["x", "y"]}))
        combos2 = list(ParameterGrid({"a": ["x", "y"], "b": [1, 2]}))
        assert combos1 == combos2  # keys sorted internally


class TestScoreMethods:
    def test_classifier_mixin_score(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        tree = DecisionTreeClassifier(max_depth=6).fit(Xtr, ytr)
        manual = float(np.mean(tree.predict(Xte) == yte))
        assert tree.score(Xte, yte) == pytest.approx(manual)


class TestHarnessValidation:
    @pytest.fixture(scope="class")
    def mini_challenge(self):
        from repro import SimulationConfig, WorkloadClassificationChallenge

        return WorkloadClassificationChallenge.from_simulation(
            SimulationConfig(seed=1, trials_scale=0.004, min_jobs_per_class=2,
                             duration_clip_s=(150.0, 300.0),
                             startup_mean_s=28.0),
            names=("60-middle-1",),
        )

    def test_unknown_traditional_model(self, mini_challenge):
        from repro.core.baselines import run_traditional_baseline

        with pytest.raises(ValueError, match="unknown model"):
            run_traditional_baseline(mini_challenge, "mlp", "60-middle-1")

    def test_unknown_dataset(self, mini_challenge):
        from repro.core.baselines import run_traditional_baseline

        with pytest.raises(KeyError, match="unknown dataset"):
            run_traditional_baseline(mini_challenge, "rf_cov", "60-end-1")

    def test_rnn_time_stride_recorded(self, mini_challenge):
        from repro.core.baselines import run_rnn_baseline

        result = run_rnn_baseline(
            mini_challenge, "lstm", "60-middle-1", hidden_size=8,
            max_epochs=1, patience=1, time_stride=10,
        )
        assert result["time_stride"] == 10
        # 540 / 10 = 54 timesteps reached the model.
        assert result["n_parameters"] > 0
