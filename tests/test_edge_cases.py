"""Edge-case and less-traveled-path tests across the stack."""

import numpy as np
import pytest

from repro.data.windows import WindowMode
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.model_selection import GridSearchCV
from repro.ml.preprocessing import upper_triangle_covariance
from repro.ml.svm import SVC
from repro.ml.tree import DecisionTreeClassifier
from repro.nn import Dropout, LeakyReLU, Linear, Sequential, Tensor
from repro.parallel import pool as pool_mod
from repro.parallel.pool import parallel_map


class TestParallelPoolPath:
    def test_pool_path_with_forced_cores(self, monkeypatch):
        """On the 1-core CI machine the pool branch never triggers by
        default; force it to prove the spawn path works end-to-end."""
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 2)
        out = parallel_map(_cube, list(range(8)), n_jobs=2, chunksize=2)
        assert out == [i**3 for i in range(8)]

    def test_grid_search_parallel_matches_serial(self, blobs_split, monkeypatch):
        Xtr, ytr, _, _ = blobs_split
        serial = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [2, 5]}, cv=3
        ).fit(Xtr, ytr)
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 2)
        parallel = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [2, 5]}, cv=3, n_jobs=2
        ).fit(Xtr, ytr)
        assert serial.best_params_ == parallel.best_params_
        np.testing.assert_allclose(
            serial.cv_results_["fold_scores"],
            parallel.cv_results_["fold_scores"],
        )


def _cube(x):
    return x**3


class TestWindowModeParse:
    def test_enum_passthrough(self):
        assert WindowMode.parse(WindowMode.START) is WindowMode.START

    def test_case_insensitive(self):
        assert WindowMode.parse("MIDDLE") is WindowMode.MIDDLE

    def test_invalid(self):
        with pytest.raises(ValueError):
            WindowMode.parse("end")


class TestCovarianceUnnormalized:
    def test_raw_gram_scaling(self):
        X = np.random.default_rng(0).normal(size=(2, 50, 3))
        norm = upper_triangle_covariance(X, normalize=True)
        raw = upper_triangle_covariance(X, normalize=False)
        np.testing.assert_allclose(raw, norm * 50, rtol=1e-10)


class TestSVCKernels:
    def test_poly_kernel_classifier(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        clf = SVC(C=1.0, kernel="poly", degree=2, coef0=1.0, gamma=0.1)
        clf.fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.7

    def test_linear_kernel_classifier(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        clf = SVC(C=1.0, kernel="linear").fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.85


class TestBoostingOptions:
    def test_colsample(self, blobs_split):
        Xtr, ytr, Xte, yte = blobs_split
        clf = GradientBoostingClassifier(
            n_estimators=8, max_depth=3, colsample=0.5, random_state=0
        ).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.8

    def test_min_child_weight_blocks_splits(self, blobs_split):
        Xtr, ytr, _, _ = blobs_split
        heavy = GradientBoostingClassifier(
            n_estimators=2, max_depth=4, min_child_weight=1e6
        ).fit(Xtr, ytr)
        # With an impossible child-weight floor every tree is a stump
        # (pure leaf), so importances stay zero.
        assert heavy.feature_importances_.sum() == 0.0

    def test_single_class_degenerate(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.zeros(10, dtype=int)
        clf = GradientBoostingClassifier(n_estimators=2).fit(X, y)
        assert np.all(clf.predict(X) == 0)


class TestSequentialContainer:
    def test_applies_in_order(self):
        seq = Sequential(Linear(3, 5, rng=0), LeakyReLU(), Linear(5, 2, rng=1))
        out = seq(Tensor(np.ones((4, 3), dtype=np.float32)))
        assert out.shape == (4, 2)

    def test_registers_all_parameters(self):
        seq = Sequential(Linear(3, 5, rng=0), Dropout(0.1), Linear(5, 2, rng=1))
        assert seq.n_parameters() == (3 * 5 + 5) + (5 * 2 + 2)


class TestChallengeIOErrors:
    def test_from_directory_missing(self, tmp_path):
        from repro import WorkloadClassificationChallenge

        with pytest.raises(FileNotFoundError):
            WorkloadClassificationChallenge.from_directory(
                tmp_path, names=("60-start-1",))


class TestArrayIOUncompressed:
    def test_uncompressed_round_trip(self, tmp_path):
        from repro.utils.arrayio import load_npz_dataset, save_npz_dataset

        rng = np.random.default_rng(0)
        arrays = dict(
            X_train=rng.normal(size=(4, 6, 7)).astype(np.float32),
            y_train=np.arange(4),
            model_train=np.array(["a", "b", "c", "d"]),
            X_test=rng.normal(size=(2, 6, 7)).astype(np.float32),
            y_test=np.arange(2),
            model_test=np.array(["a", "b"]),
        )
        path = save_npz_dataset(tmp_path / "u.npz", compress=False, **arrays)
        loaded = load_npz_dataset(path)
        np.testing.assert_array_equal(loaded["X_train"], arrays["X_train"])


class TestTrainerNoClip:
    def test_grad_clip_disabled(self):
        from repro.nn import Adam, NLLLoss, Trainer, log_softmax, Module

        class M(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(2, 2, rng=0)

            def forward(self, x):
                return log_softmax(self.fc(x.mean(axis=1)), axis=-1)

        model = M()
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), NLLLoss(),
                          max_epochs=2, patience=2, grad_clip=0.0,
                          batch_size=8)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(16, 5, 2)).astype(np.float32)
        y = rng.integers(0, 2, 16)
        hist = trainer.fit(X[:12], y[:12], X[12:], y[12:])
        assert len(hist.epochs) == 2


class TestStratifiedKFoldNoShuffle:
    def test_deterministic_without_shuffle(self):
        from repro.ml.model_selection import StratifiedKFold

        y = np.repeat([0, 1], 10)
        a = list(StratifiedKFold(2, shuffle=False).split(np.zeros(20), y))
        b = list(StratifiedKFold(2, shuffle=False).split(np.zeros(20), y))
        for (tr_a, va_a), (tr_b, va_b) in zip(a, b):
            np.testing.assert_array_equal(tr_a, tr_b)
            np.testing.assert_array_equal(va_a, va_b)
