"""Tests for sensor schemas and the architecture registry (Tables I–III,
VII–IX)."""

import numpy as np
import pytest

from repro.simcluster.architectures import (
    ARCHITECTURES,
    Family,
    N_CLASSES,
    architecture_names,
    class_index,
    get_architecture,
    job_count_table,
)
from repro.simcluster.sensors import (
    CPU_METRICS,
    GPU_SENSORS,
    N_CPU_METRICS,
    N_GPU_SENSORS,
    gpu_sensor_index,
)


class TestGpuSensors:
    def test_seven_sensors(self):
        """Table III / Table IV: seven GPU sensors."""
        assert N_GPU_SENSORS == 7

    def test_paper_order(self):
        """'element 0 is utilization_gpu_pct, element 1 is
        utilization_memory_pct, etc.'"""
        names = [s.name for s in GPU_SENSORS]
        assert names == [
            "utilization_gpu_pct",
            "utilization_memory_pct",
            "memory_free_MiB",
            "memory_used_MiB",
            "temperature_gpu",
            "temperature_memory",
            "power_draw_W",
        ]

    def test_index_lookup(self):
        assert gpu_sensor_index("power_draw_W") == 6
        assert gpu_sensor_index("utilization_gpu_pct") == 0

    def test_unknown_sensor(self):
        with pytest.raises(KeyError, match="unknown GPU sensor"):
            gpu_sensor_index("nope")

    def test_ranges_sane(self):
        for spec in GPU_SENSORS:
            assert spec.lo < spec.hi

    def test_clip(self):
        util = GPU_SENSORS[0]
        out = util.clip(np.array([-5.0, 50.0, 200.0]))
        assert out.min() >= 0.0 and out.max() <= 100.0


class TestCpuMetrics:
    def test_eight_metrics(self):
        """Table II lists eight CPU metrics."""
        assert N_CPU_METRICS == 8

    def test_names(self):
        names = [m.name for m in CPU_METRICS]
        assert names == [
            "CPUFrequency", "CPUTime", "CPUUtilization", "RSS",
            "VMSize", "Pages", "ReadMB", "WriteMB",
        ]


class TestArchitectureRegistry:
    def test_26_classes(self):
        """'twenty six distinct classes of neural networks'."""
        assert N_CLASSES == 26

    def test_family_job_totals_match_table1(self):
        """Family sums must equal Table I job counts."""
        table = job_count_table()
        totals = {fam: sum(v.values()) for fam, v in table.items()}
        assert totals["VGG"] == 560
        # Table VIII's per-variant ResNet counts sum to 463 (Table I says
        # 464 — a paper-internal off-by-one); we follow the appendix.
        assert totals["ResNet"] == 463
        assert totals["Inception"] == 484
        assert totals["U-Net"] == 1431
        # NLP follows Table I (189 + 172); Table IX disagrees, but only the
        # Table I values make the release total the stated 3,430 jobs.
        assert totals["NLP"] == 189 + 172
        assert totals["GNN"] == 33 + 39 + 27 + 32
        assert sum(totals.values()) == 3430

    def test_unet_has_nine_variants(self):
        unet = [a for a in ARCHITECTURES if a.family is Family.UNET]
        assert len(unet) == 9
        assert {a.name for a in unet} == {
            f"U{d}-{f}" for d in (3, 4, 5) for f in (32, 64, 128)
        }

    def test_class_index_round_trip(self):
        for i, spec in enumerate(ARCHITECTURES):
            assert class_index(spec.name) == i
            assert get_architecture(i) is spec
            assert get_architecture(spec.name) is spec

    def test_names_unique(self):
        names = architecture_names()
        assert len(set(names)) == len(names) == 26

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            class_index("AlexNet")

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            get_architecture(26)

    def test_relative_sizes_in_unit_range(self):
        for spec in ARCHITECTURES:
            assert 0.0 < spec.relative_size <= 1.0

    def test_each_family_has_max_size_variant(self):
        """Every family's largest variant anchors at relative_size 1.0."""
        for fam in Family:
            sizes = [a.relative_size for a in ARCHITECTURES if a.family is fam]
            assert max(sizes) == 1.0
