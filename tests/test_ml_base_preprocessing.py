"""Tests for estimator base classes and preprocessing transformers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.base import BaseEstimator, clone
from repro.ml.preprocessing import (
    CovarianceFeatures,
    Flatten3D,
    PCA,
    Pipeline,
    StandardScaler,
    TimeSeriesStandardScaler,
    covariance_feature_names,
    upper_triangle_covariance,
)


class _Dummy(BaseEstimator):
    def __init__(self, a=1, b="x", sub=None):
        self.a = a
        self.b = b
        self.sub = sub


class TestBaseEstimator:
    def test_get_params(self):
        d = _Dummy(a=3)
        assert d.get_params() == {"a": 3, "b": "x", "sub": None}

    def test_set_params(self):
        d = _Dummy()
        d.set_params(a=9, b="y")
        assert d.a == 9 and d.b == "y"

    def test_set_invalid_param(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            _Dummy().set_params(c=1)

    def test_nested_params(self):
        d = _Dummy(sub=_Dummy(a=5))
        assert d.get_params()["sub__a"] == 5
        d.set_params(sub__a=7)
        assert d.sub.a == 7

    def test_clone_is_unfitted_copy(self):
        d = _Dummy(a=4)
        d.fitted_ = True
        c = clone(d)
        assert c.a == 4
        assert not hasattr(c, "fitted_")
        assert c is not d

    def test_clone_deep_copies_mutables(self):
        d = _Dummy(a=[1, 2])
        c = clone(d)
        c.a.append(3)
        assert d.a == [1, 2]

    def test_repr(self):
        assert "a=1" in repr(_Dummy())


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5, 3, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1, atol=1e-10)

    def test_constant_feature_not_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0)

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        sc = StandardScaler().fit(X)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(X)), X,
                                   atol=1e-10)

    def test_feature_count_check(self):
        sc = StandardScaler().fit(np.random.default_rng(0).normal(size=(10, 3)))
        with pytest.raises(ValueError, match="features"):
            sc.transform(np.zeros((5, 4)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            StandardScaler().transform(np.ones((2, 2)))


class TestTimeSeriesScaler:
    def test_per_sensor_stats(self):
        rng = np.random.default_rng(2)
        X = rng.normal([10.0, -5.0], [2.0, 7.0], size=(30, 50, 2))
        Z = TimeSeriesStandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=(0, 1)), 0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=(0, 1)), 1, atol=1e-10)

    def test_requires_3d(self):
        with pytest.raises(ValueError, match="3-D"):
            TimeSeriesStandardScaler().fit(np.ones((4, 5)))

    def test_inverse(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(5, 20, 3))
        sc = TimeSeriesStandardScaler().fit(X)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(X)), X,
                                   atol=1e-10)


class TestPCA:
    def test_reconstruction_with_full_rank(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(40, 6))
        pca = PCA(n_components=6).fit(X)
        Z = pca.transform(X)
        np.testing.assert_allclose(pca.inverse_transform(Z), X, atol=1e-8)

    def test_components_orthonormal(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(60, 10))
        pca = PCA(n_components=4).fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-8)

    def test_variance_ordering(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(80, 8)) * np.array([10, 5, 2, 1, 1, 1, 1, 1])
        pca = PCA(n_components=5).fit(X)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-9)

    def test_captures_dominant_direction(self):
        rng = np.random.default_rng(7)
        t = rng.normal(size=200)
        X = np.outer(t, [3.0, 1.0, 0.0]) + rng.normal(0, 0.01, size=(200, 3))
        pca = PCA(n_components=1).fit(X)
        direction = pca.components_[0] / np.linalg.norm(pca.components_[0])
        expected = np.array([3.0, 1.0, 0.0]) / np.sqrt(10)
        assert abs(abs(direction @ expected) - 1) < 1e-3

    def test_invalid_components(self):
        X = np.random.default_rng(0).normal(size=(10, 5))
        with pytest.raises(ValueError):
            PCA(n_components=0).fit(X)
        with pytest.raises(ValueError):
            PCA(n_components=6).fit(X)

    def test_deterministic_sign(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(30, 5))
        a = PCA(n_components=3).fit(X).components_
        b = PCA(n_components=3).fit(X.copy()).components_
        np.testing.assert_allclose(a, b)


class TestCovariance:
    def test_shape_28_for_7_sensors(self):
        """R^{n x 540 x 7} -> R^{n x 28}, Section IV-A."""
        X = np.random.default_rng(0).normal(size=(5, 540, 7))
        F = upper_triangle_covariance(X)
        assert F.shape == (5, 28)

    def test_matches_naive_computation(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(3, 50, 4))
        F = upper_triangle_covariance(X, normalize=True)
        for i in range(3):
            gram = X[i].T @ X[i] / 50
            iu = np.triu_indices(4)
            np.testing.assert_allclose(F[i], gram[iu], rtol=1e-10)

    def test_diagonal_entries_nonnegative(self):
        X = np.random.default_rng(2).normal(size=(10, 30, 7))
        F = upper_triangle_covariance(X)
        names = covariance_feature_names()
        var_cols = [j for j, n in enumerate(names) if n.startswith("var(")]
        assert np.all(F[:, var_cols] >= 0)

    def test_feature_names(self):
        names = covariance_feature_names()
        assert len(names) == 28
        assert names[0] == "var(utilization_gpu_pct)"
        assert "cov(utilization_gpu_pct, utilization_memory_pct)" in names
        assert names[-1] == "var(power_draw_W)"

    def test_transformer_interface(self):
        X = np.random.default_rng(3).normal(size=(4, 20, 7))
        cov = CovarianceFeatures()
        F = cov.fit_transform(X)
        assert F.shape == (4, 28)
        assert len(cov.feature_names_) == 28

    def test_sensor_count_check(self):
        cov = CovarianceFeatures().fit(np.ones((2, 10, 7)))
        with pytest.raises(ValueError, match="sensors"):
            cov.transform(np.ones((2, 10, 5)))

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.float64, (2, 12, 3),
                  elements=st.floats(-100, 100, allow_nan=False)))
    def test_property_psd(self, X):
        """Per-trial Gram matrices are PSD: reconstructed eigenvalues >= 0."""
        F = upper_triangle_covariance(X + 1e-6)
        iu = np.triu_indices(3)
        for row in F:
            M = np.zeros((3, 3))
            M[iu] = row
            M = M + M.T - np.diag(np.diag(M))
            eig = np.linalg.eigvalsh(M)
            assert eig.min() >= -1e-8 * max(1.0, abs(eig).max())


class TestFlattenAndPipeline:
    def test_flatten(self):
        X = np.arange(2 * 3 * 4, dtype=float).reshape(2, 3, 4)
        F = Flatten3D().fit_transform(X)
        assert F.shape == (2, 12)
        np.testing.assert_array_equal(F[0], X[0].ravel())

    def test_flatten_window_check(self):
        f = Flatten3D().fit(np.ones((2, 3, 4)))
        with pytest.raises(ValueError, match="window shape"):
            f.transform(np.ones((2, 5, 4)))

    def test_pipeline_chains(self, blobs_split):
        from repro.ml.tree import DecisionTreeClassifier

        Xtr, ytr, Xte, yte = blobs_split
        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=6)),
        ])
        pipe.fit(Xtr, ytr)
        assert pipe.score(Xte, yte) > 0.85

    def test_pipeline_set_params_routing(self):
        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("pca", PCA(n_components=2)),
        ])
        pipe.set_params(pca__n_components=3)
        assert pipe["pca"].n_components == 3

    def test_pipeline_rejects_non_transformer_middle(self):
        from repro.ml.tree import DecisionTreeClassifier

        with pytest.raises(TypeError, match="transformer"):
            Pipeline([
                ("clf", DecisionTreeClassifier()),
                ("scale", StandardScaler()),
            ])

    def test_pipeline_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline([("a", StandardScaler()), ("a", StandardScaler())])

    def test_pipeline_unfitted_predict(self):
        pipe = Pipeline([("scale", StandardScaler()), ("pca", PCA(2))])
        with pytest.raises(RuntimeError):
            pipe.predict(np.ones((2, 2)))

    def test_pipeline_clone(self, blobs_split):
        from repro.ml.base import clone
        from repro.ml.tree import DecisionTreeClassifier

        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=3)),
        ])
        c = clone(pipe)
        assert c["clf"].max_depth == 3
        assert c["clf"] is not pipe["clf"]
