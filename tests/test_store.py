"""Tests for the repro.store telemetry store: WAL framing, segment files,
manifest atomicity, the store read/write paths, and compaction."""

import pickle
import zlib

import numpy as np
import pytest

from repro.data.fulltrace import full_trace_covariance
from repro.store import (
    CompactionReport,
    Manifest,
    SegmentReader,
    SegmentWriter,
    TelemetryStore,
    TrialSlice,
    WalRecord,
    WriteAheadLog,
    bucket_means,
    compact_store,
    read_wal,
)
from repro.store.segment import segment_paths


def _series(n, seed=0, sensors=7):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, sensors)).astype(np.float32)


def _record(job_id=0, n=100, seed=None):
    return WalRecord(
        job_id=job_id, gpu_index=0, label=job_id % 3,
        model_name=f"m{job_id}",
        series=_series(n, seed=job_id if seed is None else seed),
    )


class TestWal:
    def test_commit_read_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        records = [_record(0, 50), _record(1, 75)]
        for r in records:
            wal.stage(r)
        assert wal.n_staged == 2
        committed = wal.commit()
        assert [r.key for r in committed] == [(0, 0), (1, 0)]
        assert wal.n_staged == 0

        read_back, valid = read_wal(path)
        assert valid == path.stat().st_size
        assert [r.key for r in read_back] == [(0, 0), (1, 0)]
        for orig, back in zip(records, read_back):
            np.testing.assert_array_equal(orig.series, back.series)
            assert back.series.dtype == np.float32
            assert back.label == orig.label
            assert back.model_name == orig.model_name

    def test_torn_tail_trimmed(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.stage(_record(0, 40))
        wal.commit()
        good_size = path.stat().st_size
        # Append half of a second frame — a torn write.
        frame = _record(1, 40).encode()
        with path.open("ab") as handle:
            handle.write(frame[: len(frame) // 2])

        records, valid = read_wal(path)
        assert valid == good_size
        assert [r.key for r in records] == [(0, 0)]
        # A fresh WAL trims the torn tail before appending more.
        wal2 = WriteAheadLog(path)
        wal2.stage(_record(1, 40))
        wal2.commit()
        records, valid = read_wal(path)
        assert [r.key for r in records] == [(0, 0), (1, 0)]
        assert valid == path.stat().st_size

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.stage(_record(0, 30))
        wal.stage(_record(1, 30))
        wal.commit()
        # Flip one byte in the *second* frame's payload.
        first_len = len(_record(0, 30).encode())
        raw = bytearray(path.read_bytes())
        raw[first_len + 16] ^= 0xFF
        path.write_bytes(bytes(raw))

        records, valid = read_wal(path)
        assert [r.key for r in records] == [(0, 0)]
        assert valid == first_len

    def test_truncate(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.stage(_record(0, 20))
        wal.commit()
        wal.truncate()
        assert path.stat().st_size == 0
        assert wal.records() == []


class TestSegment:
    def _write_one(self, tmp_path, seq=0):
        rows = np.concatenate([_series(60, seed=1), _series(40, seed=2)])
        trials = {
            (0, 0): TrialSlice(row_start=0, n_rows=60, label=0, model_name="a"),
            (1, 0): TrialSlice(row_start=60, n_rows=40, label=1, model_name="b"),
        }
        SegmentWriter.write(tmp_path, seq, rows, trials)
        return rows, trials

    def test_write_read_round_trip(self, tmp_path):
        rows, trials = self._write_one(tmp_path)
        reader = SegmentReader(tmp_path, 0)
        assert reader.n_rows == 100
        assert reader.n_sensors == 7
        np.testing.assert_array_equal(np.asarray(reader.data), rows)
        np.testing.assert_array_equal(reader.series((1, 0)), rows[60:])
        assert reader.verify()
        reader.close()

    def test_series_is_zero_copy_view(self, tmp_path):
        self._write_one(tmp_path)
        reader = SegmentReader(tmp_path, 0)
        view = reader.series((0, 0))
        assert view.dtype == np.float32
        assert np.shares_memory(view, reader.data)

    def test_verify_catches_bit_rot(self, tmp_path):
        self._write_one(tmp_path)
        dat, _ = segment_paths(tmp_path, 0)
        raw = bytearray(dat.read_bytes())
        raw[100] ^= 0xFF
        dat.write_bytes(bytes(raw))
        reader = SegmentReader(tmp_path, 0)
        assert not reader.verify()

    def test_rejects_non_2d_rows(self, tmp_path):
        with pytest.raises(ValueError, match="2-D"):
            SegmentWriter.write(tmp_path, 0, np.zeros(10, dtype=np.float32), {})


class TestManifest:
    def test_save_load_round_trip(self, tmp_path):
        m = Manifest(n_shards=2, n_sensors=7)
        seq = m.allocate_seq(0)
        m.add_segment(0, seq)
        m.save(tmp_path)
        loaded = Manifest.load(tmp_path)
        assert loaded.n_shards == 2
        assert loaded.n_sensors == 7
        assert loaded.shard_segments(0) == [seq]
        assert loaded.shard_segments(1) == []

    def test_save_bumps_version(self, tmp_path):
        m = Manifest(n_shards=1, n_sensors=7)
        m.save(tmp_path)
        v1 = Manifest.load(tmp_path).version
        m.save(tmp_path)
        assert Manifest.load(tmp_path).version == v1 + 1

    def test_load_absent_returns_none(self, tmp_path):
        assert Manifest.load(tmp_path) is None

    def test_load_corrupt_raises(self, tmp_path):
        (tmp_path / "MANIFEST").write_bytes(b"not a manifest")
        with pytest.raises(ValueError):
            Manifest.load(tmp_path)

    def test_replace_segment(self, tmp_path):
        m = Manifest(n_shards=1, n_sensors=7)
        old = m.allocate_seq(0)
        m.add_segment(0, old)
        new = m.allocate_seq(0)
        m.replace_segment(0, old, new)
        assert m.shard_segments(0) == [new]


class TestTelemetryStore:
    def _fill(self, store, n_trials=5):
        expected = {}
        for job_id in range(n_trials):
            series = _series(400 + 40 * job_id, seed=job_id)
            store.append(job_id, series, label=job_id % 3,
                         model_name=f"m{job_id % 3}")
            expected[(job_id, 0)] = series
        return expected

    def test_flush_reopen_bit_parity(self, tmp_path):
        with TelemetryStore(tmp_path / "s", n_shards=3) as store:
            expected = self._fill(store)
            store.flush()
            for (job_id, gpu), series in expected.items():
                np.testing.assert_array_equal(store.series(job_id, gpu), series)
        with TelemetryStore(tmp_path / "s", n_shards=3) as store:
            assert store.keys() == sorted(expected)
            assert store.n_sensors == 7
            for (job_id, gpu), series in expected.items():
                got = store.series(job_id, gpu)
                assert got.dtype == np.float32
                np.testing.assert_array_equal(got, series)
            store.verify()

    def test_committed_but_unflushed_survives_reopen(self, tmp_path):
        with TelemetryStore(tmp_path / "s", n_shards=2) as store:
            expected = self._fill(store, n_trials=3)
            store.commit()  # WAL only, no segments
        with TelemetryStore(tmp_path / "s", n_shards=2) as store:
            assert store.keys() == sorted(expected)
            for (job_id, _), series in expected.items():
                np.testing.assert_array_equal(store.series(job_id), series)

    def test_uncommitted_is_lost(self, tmp_path):
        with TelemetryStore(tmp_path / "s", n_shards=1) as store:
            store.append(0, _series(100))
        with TelemetryStore(tmp_path / "s", n_shards=1) as store:
            assert store.keys() == []

    def test_sealed_reads_are_zero_copy(self, tmp_path):
        with TelemetryStore(tmp_path / "s", n_shards=2) as store:
            self._fill(store)
            store.flush()
            key = store.keys()[0]
            reader = store._readers[store._catalog[key]]
            assert np.shares_memory(store.series(*key), reader.data)

    def test_duplicate_key_rejected(self, tmp_path):
        with TelemetryStore(tmp_path / "s") as store:
            store.append(0, _series(100))
            with pytest.raises(ValueError, match="append-only"):
                store.append(0, _series(100))
            store.flush()
            with pytest.raises(ValueError, match="append-only"):
                store.append(0, _series(100))
            # Same job, different GPU is a distinct trial.
            store.append(0, _series(100), gpu_index=1)

    def test_sensor_width_mismatch_rejected(self, tmp_path):
        with TelemetryStore(tmp_path / "s") as store:
            store.append(0, _series(100))
            with pytest.raises(ValueError, match="sensor"):
                store.append(1, _series(100, sensors=5))

    def test_empty_series_rejected(self, tmp_path):
        with TelemetryStore(tmp_path / "s") as store:
            with pytest.raises(ValueError, match="non-empty"):
                store.append(0, np.zeros((0, 7), dtype=np.float32))

    def test_unknown_key_raises(self, tmp_path):
        with TelemetryStore(tmp_path / "s") as store:
            with pytest.raises(KeyError):
                store.series(99)

    def test_reopen_uses_stored_shard_count(self, tmp_path):
        with TelemetryStore(tmp_path / "s", n_shards=3) as store:
            self._fill(store)
            store.flush()
        # Reopening with a different n_shards keeps the on-disk layout.
        with TelemetryStore(tmp_path / "s", n_shards=8) as store:
            assert store.n_shards == 3
            assert len(store) == 5

    def test_labelled_dataset_preserves_float32_views(self, tmp_path):
        with TelemetryStore(tmp_path / "s", n_shards=2) as store:
            expected = self._fill(store)
            store.flush()
            ds = store.labelled_dataset()
            assert len(ds) == len(expected)
            for trial in ds:
                assert trial.series.dtype == np.float32
                np.testing.assert_array_equal(
                    trial.series, expected[(trial.job_id, trial.gpu_index)]
                )
                assert np.shares_memory(
                    trial.series, store.series(trial.job_id, trial.gpu_index)
                )

    def test_labelled_dataset_min_samples(self, tmp_path):
        with TelemetryStore(tmp_path / "s") as store:
            self._fill(store)  # lengths 400..560
            store.flush()
            ds = store.labelled_dataset(min_samples=500)
            assert all(t.n_samples >= 500 for t in ds)
            assert 0 < len(ds) < 5

    def test_moments_match_dense_covariance(self, tmp_path):
        with TelemetryStore(tmp_path / "s") as store:
            self._fill(store, n_trials=2)
            store.flush()
            series = store.series(0)
            mean = series.mean(axis=0)
            scale = series.std(axis=0) + 1e-8
            got = store.moments(0).standardized_covariance(mean, scale)
            want = full_trace_covariance(series, mean, scale)
            np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-9)

    def test_stats_and_totals(self, tmp_path):
        with TelemetryStore(tmp_path / "s", n_shards=2) as store:
            expected = self._fill(store)
            store.flush()
            assert len(store) == 5
            assert (0, 0) in store
            assert (99, 0) not in store
            total = sum(s.shape[0] for s in expected.values())
            assert store.total_rows() == total
            stats = store.stats()
            assert stats["n_trials"] == 5
            assert stats["total_rows"] == total

    def test_gc_stray_removes_only_unreferenced(self, tmp_path):
        with TelemetryStore(tmp_path / "s", n_shards=1) as store:
            expected = self._fill(store, n_trials=3)
            store.flush()
            shard_dir = store._shard_dir(0)
            stray_dat, stray_meta = segment_paths(shard_dir, 999)
            stray_dat.write_bytes(b"junk")
            stray_meta.write_bytes(b"junk")
            removed = store.gc_stray()
            assert sorted(p.name for p in removed) == sorted(
                [stray_dat.name, stray_meta.name]
            )
            assert not stray_dat.exists()
            for (job_id, _), series in expected.items():
                np.testing.assert_array_equal(store.series(job_id), series)

    def test_ingest_dataset_round_trip(self, tmp_path, labelled_tiny):
        with TelemetryStore(tmp_path / "s", n_shards=4) as store:
            n = store.ingest_dataset(labelled_tiny)
            assert n == len(labelled_tiny)
            for trial in labelled_tiny:
                got = store.series(trial.job_id, trial.gpu_index)
                np.testing.assert_array_equal(
                    got, np.asarray(trial.series, dtype=np.float32)
                )


class TestCompaction:
    def _filled(self, root, n_trials=4, n_shards=2):
        store = TelemetryStore(root, n_shards=n_shards)
        raw = {}
        for job_id in range(n_trials):
            series = _series(420 + 30 * job_id, seed=job_id)
            store.append(job_id, series, label=job_id % 2,
                         model_name=f"m{job_id % 2}")
            raw[(job_id, 0)] = series
        store.flush()
        return store, raw

    def test_bucket_means_math(self):
        rows = np.arange(14, dtype=np.float32).reshape(7, 2)
        out = bucket_means(rows, 3)
        assert out.shape == (3, 2)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out[0], rows[:3].mean(axis=0))
        np.testing.assert_allclose(out[1], rows[3:6].mean(axis=0))
        # Trailing partial bucket averages its single remaining row.
        np.testing.assert_allclose(out[2], rows[6])

    def test_bucket_means_identity_at_one(self):
        rows = _series(50)
        np.testing.assert_array_equal(bucket_means(rows, 1), rows)

    def test_compaction_reduces_rows_and_keeps_moments(self, tmp_path):
        store, raw = self._filled(tmp_path / "s")
        before = store.total_rows()
        report = compact_store(store, bucket=10, keep_segments=0)
        assert isinstance(report, CompactionReport)
        assert report.segments_compacted > 0
        assert store.total_rows() < before
        assert report.row_reduction > 0.8
        for (job_id, _), series in raw.items():
            mean = series.mean(axis=0)
            scale = series.std(axis=0) + 1e-8
            got = store.moments(job_id).standardized_covariance(mean, scale)
            want = full_trace_covariance(series, mean, scale)
            np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-9)
        store.close()

    def test_compaction_idempotent(self, tmp_path):
        store, _ = self._filled(tmp_path / "s")
        compact_store(store, bucket=10, keep_segments=0)
        rows_after = store.total_rows()
        report2 = compact_store(store, bucket=10, keep_segments=0)
        assert report2.segments_compacted == 0
        assert store.total_rows() == rows_after
        store.close()

    def test_compaction_survives_reopen(self, tmp_path):
        store, raw = self._filled(tmp_path / "s")
        compact_store(store, bucket=10, keep_segments=0)
        downsampled = {k: np.array(store.series(k[0])) for k in raw}
        store.close()
        with TelemetryStore(tmp_path / "s") as store:
            store.verify()
            for key, want in downsampled.items():
                np.testing.assert_array_equal(store.series(key[0]), want)
                # Moments of the *original* rows ride along in the meta.
                assert store.slice_info(key[0]).moments is not None

    def test_keep_segments_spares_newest(self, tmp_path):
        store, _ = self._filled(tmp_path / "s", n_shards=1)
        # A second flush creates a newer segment on the shard.
        store.append(100, _series(400, seed=100), label=0, model_name="m0")
        store.flush()
        compact_store(store, bucket=10, keep_segments=1)
        # The newest segment's trial is untouched (full resolution).
        assert store.series(100).shape[0] == 400
        store.close()
