"""Additional coverage: init schemes, optimizer variants, pipeline proba,
PCA variance accounting, and misc paths."""

import numpy as np
import pytest

from repro.ml.ensemble import RandomForestClassifier
from repro.ml.preprocessing import PCA, Pipeline, StandardScaler
from repro.nn.init import kaiming_uniform, orthogonal, uniform_fan_in, xavier_uniform
from repro.nn.module import Parameter
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class TestInitSchemes:
    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert w.min() >= -bound and w.max() <= bound
        assert w.dtype == np.float32

    def test_kaiming_scales_with_fan_in(self):
        rng = np.random.default_rng(1)
        small_fan = kaiming_uniform((10, 100), rng)
        large_fan = kaiming_uniform((1000, 100), rng)
        assert small_fan.std() > large_fan.std()

    def test_uniform_fan_in_lstm_convention(self):
        rng = np.random.default_rng(2)
        w = uniform_fan_in((64, 256), rng)
        assert np.abs(w).max() <= 1.0 / np.sqrt(64) + 1e-7

    def test_orthogonal_is_orthogonal(self):
        rng = np.random.default_rng(3)
        q = orthogonal((16, 16), rng)
        np.testing.assert_allclose(q @ q.T, np.eye(16), atol=1e-5)

    def test_orthogonal_requires_2d(self):
        with pytest.raises(ValueError):
            orthogonal((4,), np.random.default_rng(0))

    def test_conv_fan_convention(self):
        """Conv weights (C_out, C_in, K): fan_in = C_in*K."""
        from repro.nn.init import _fans

        fan_in, fan_out = _fans((8, 3, 5))
        assert fan_in == 15
        assert fan_out == 40


class TestAdamVariants:
    def _params(self):
        return [Parameter(np.full(4, 5.0, dtype=np.float64))]

    def test_decoupled_weight_decay_shrinks_without_grads_in_moments(self):
        params = self._params()
        opt = Adam(params, lr=0.1, weight_decay=0.1,
                   decoupled_weight_decay=True)
        params[0].grad = np.zeros(4)
        opt.step()
        assert np.all(params[0].data < 5.0)
        # Moments stay zero: decay bypassed them.
        np.testing.assert_allclose(opt._m[0], 0.0)

    def test_coupled_weight_decay_enters_moments(self):
        params = self._params()
        opt = Adam(params, lr=0.1, weight_decay=0.1)
        params[0].grad = np.zeros(4)
        opt.step()
        assert np.any(opt._m[0] != 0.0)

    def test_skips_parameters_without_grad(self):
        params = self._params()
        opt = Adam(params, lr=0.1)
        before = params[0].data.copy()
        opt.step()  # no grads set
        np.testing.assert_array_equal(params[0].data, before)


class TestPipelineProba:
    def test_predict_proba_through_pipeline(self, blobs_split):
        Xtr, ytr, Xte, _ = blobs_split
        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("clf", RandomForestClassifier(n_estimators=10, random_state=0)),
        ])
        pipe.fit(Xtr, ytr)
        proba = pipe.predict_proba(Xte)
        assert proba.shape == (len(Xte), 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_pipeline_as_pure_transformer(self, blobs_split):
        Xtr, _, Xte, _ = blobs_split
        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("pca", PCA(n_components=3)),
        ])
        pipe.fit(Xtr)
        assert pipe.transform(Xte).shape == (len(Xte), 3)


class TestPCAVarianceAccounting:
    def test_ratios_sum_to_at_most_one(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(50, 8))
        pca = PCA(n_components=5).fit(X)
        total = pca.explained_variance_ratio_.sum()
        assert 0.0 < total <= 1.0 + 1e-9

    def test_full_rank_explains_everything(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(40, 6))
        pca = PCA(n_components=6).fit(X)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)


class TestTensorMisc:
    def test_batched_matmul_shapes(self):
        a = Tensor(np.ones((4, 3, 5)), requires_grad=True)
        b = Tensor(np.ones((4, 5, 2)), requires_grad=True)
        out = a @ b
        assert out.shape == (4, 3, 2)
        out.sum().backward()
        assert a.grad.shape == (4, 3, 5)
        assert b.grad.shape == (4, 5, 2)

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_len(self):
        assert len(Tensor(np.zeros((7, 2)))) == 7

    def test_pow_rejects_tensor_exponent(self):
        x = Tensor(np.ones(3))
        with pytest.raises(TypeError):
            _ = x ** Tensor(np.ones(3))

    def test_concatenate_axis0_gradients(self):
        a = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        b = Tensor(np.ones(2), requires_grad=True, dtype=np.float64)
        out = Tensor.concatenate([a, b], axis=0)
        (out * np.array([1, 2, 3, 4, 5.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 2, 3])
        np.testing.assert_allclose(b.grad, [4, 5])


class TestTrainerPredictLogProbs:
    def test_log_probs_shape_and_normalization(self):
        from repro.nn import Linear, Module, NLLLoss, SGD, Trainer, log_softmax

        class M(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(3, 4, rng=0)

            def forward(self, x):
                return log_softmax(self.fc(x.mean(axis=1)), axis=-1)

        model = M()
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01), NLLLoss(),
                          batch_size=4, max_epochs=1)
        X = np.random.default_rng(0).normal(size=(10, 6, 3)).astype(np.float32)
        lp = trainer.predict_log_probs(X)
        assert lp.shape == (10, 4)
        np.testing.assert_allclose(np.exp(lp).sum(axis=1), 1.0, atol=1e-5)
