"""Integration tests: full pipeline from simulation to scored baselines.

These use the tiny session fixtures, so each baseline runs in seconds; the
benchmark suite covers paper-scale runs.
"""

import numpy as np
import pytest

from repro import SimulationConfig, WorkloadClassificationChallenge
from repro.core.baselines import (
    run_rnn_baseline,
    run_traditional_baseline,
    run_xgboost_baseline,
)


@pytest.fixture(scope="module")
def tiny_challenge():
    """A 26-class challenge big enough to learn on, small enough for CI."""
    return WorkloadClassificationChallenge.from_simulation(
        SimulationConfig(
            seed=99, trials_scale=0.012, min_jobs_per_class=4,
            duration_clip_s=(150.0, 400.0), startup_mean_s=28.0,
        ),
        names=("60-start-1", "60-middle-1", "60-random-1"),
    )


class TestEndToEnd:
    def test_challenge_has_all_classes(self, tiny_challenge):
        ds = tiny_challenge.dataset("60-middle-1")
        assert len(np.unique(ds.y_train)) == 26

    def test_traditional_baseline_beats_chance(self, tiny_challenge):
        result = run_traditional_baseline(
            tiny_challenge, "rf_cov", "60-middle-1",
            cv=2, rf_trees=(15,),
        )
        # Chance on 26 classes is ~4%; any signal puts us way above.
        assert result["test_accuracy"] > 0.25
        assert result["cv_accuracy"] > 0.25
        assert "clf__n_estimators" in result["best_params"]

    def test_svm_cov_baseline_runs(self, tiny_challenge):
        result = run_traditional_baseline(
            tiny_challenge, "svm_cov", "60-middle-1", cv=2,
        )
        assert result["test_accuracy"] > 0.2

    def test_pca_dims_capped_at_small_scale(self, tiny_challenge):
        """At tiny scale the paper's 512-dim PCA is impossible; the harness
        must cap the grid at the sample count rather than crash."""
        result = run_traditional_baseline(
            tiny_challenge, "rf_pca", "60-middle-1",
            cv=2, rf_trees=(10,),
        )
        assert result["best_params"]["pca__n_components"] <= \
            tiny_challenge.dataset("60-middle-1").n_train

    def test_xgboost_baseline_artifacts(self, tiny_challenge):
        result = run_xgboost_baseline(
            tiny_challenge, "60-random-1", cv=2,
            grid={"clf__gamma": [0.0], "clf__reg_lambda": [1.0]},
            n_estimators=6,
        )
        assert result["test_accuracy"] > 0.2
        assert len(result["train_curve"]) == 6
        assert len(result["feature_importance"]) == 28
        # Importances are ranked descending.
        values = [v for _, v in result["feature_importance"]]
        assert values == sorted(values, reverse=True)
        # Train accuracy is (weakly) increasing early on.
        assert result["train_curve"][-1] >= result["train_curve"][0]

    def test_rnn_baseline_smoke(self, tiny_challenge):
        result = run_rnn_baseline(
            tiny_challenge, "lstm", "60-middle-1",
            hidden_size=12, max_epochs=3, patience=3, batch_size=16,
            time_stride=6,
        )
        assert 0.0 <= result["test_accuracy"] <= 1.0
        assert result["epochs_run"] <= 3
        assert result["n_parameters"] > 0

    def test_cnn_lstm_baseline_smoke(self, tiny_challenge):
        result = run_rnn_baseline(
            tiny_challenge, "cnn_lstm", "60-middle-1",
            hidden_size=12, max_epochs=2, patience=2, batch_size=16,
            time_stride=2,
        )
        assert 0.0 <= result["test_accuracy"] <= 1.0

    def test_invalid_variant(self, tiny_challenge):
        with pytest.raises(ValueError, match="variant"):
            run_rnn_baseline(tiny_challenge, "transformer", "60-middle-1")


class TestDeterminism:
    def test_same_seed_same_challenge(self):
        cfg = SimulationConfig(seed=5, trials_scale=0.004, min_jobs_per_class=2,
                               duration_clip_s=(150.0, 300.0))
        a = WorkloadClassificationChallenge.from_simulation(
            cfg, names=("60-random-1",))
        b = WorkloadClassificationChallenge.from_simulation(
            cfg, names=("60-random-1",))
        np.testing.assert_array_equal(
            a.dataset("60-random-1").X_train, b.dataset("60-random-1").X_train
        )
        np.testing.assert_array_equal(
            a.dataset("60-random-1").y_test, b.dataset("60-random-1").y_test
        )

    def test_different_seed_different_data(self):
        base = dict(trials_scale=0.004, min_jobs_per_class=2,
                    duration_clip_s=(150.0, 300.0))
        a = WorkloadClassificationChallenge.from_simulation(
            SimulationConfig(seed=5, **base), names=("60-start-1",))
        b = WorkloadClassificationChallenge.from_simulation(
            SimulationConfig(seed=6, **base), names=("60-start-1",))
        assert not np.array_equal(
            a.dataset("60-start-1").X_train, b.dataset("60-start-1").X_train
        )

    def test_window_position_difficulty_ordering(self, tiny_challenge):
        """The paper's most robust shape: start windows are hardest.

        Verified here on the tiny instance with a fast model: middle-window
        accuracy must exceed start-window accuracy.
        """
        from repro.models import make_rf_cov

        accs = {}
        for name in ("60-start-1", "60-middle-1"):
            accs[name] = tiny_challenge.evaluate(
                make_rf_cov(n_estimators=30, max_features=None), name
            )["accuracy"]
        assert accs["60-middle-1"] > accs["60-start-1"]
