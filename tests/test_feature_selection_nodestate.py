"""Tests for SelectByImportance and the node-state snapshot view."""

import numpy as np
import pytest

from repro.ml.preprocessing import Pipeline, SelectByImportance, StandardScaler
from repro.simcluster.nodestate import snapshot_cluster
from repro.simcluster.scheduler import SchedulerLog


class TestSelectByImportance:
    def _data(self, n=120, seed=0):
        """Only features 0 and 3 carry signal."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 8))
        y = ((X[:, 0] > 0).astype(int) + (X[:, 3] > 0).astype(int)) % 3
        return X, y

    def test_selects_informative_features(self):
        X, y = self._data()
        sel = SelectByImportance(k=2, n_estimators=10).fit(X, y)
        assert set(sel.support_.tolist()) == {0, 3}

    def test_transform_shape(self):
        X, y = self._data()
        sel = SelectByImportance(k=3).fit(X, y)
        assert sel.transform(X).shape == (len(y), 3)

    def test_k_clipped_to_dims(self):
        X, y = self._data()
        sel = SelectByImportance(k=99).fit(X, y)
        assert sel.transform(X).shape[1] == X.shape[1]

    def test_invalid_k(self):
        X, y = self._data()
        with pytest.raises(ValueError):
            SelectByImportance(k=0).fit(X, y)

    def test_selected_names(self):
        X, y = self._data()
        sel = SelectByImportance(k=2).fit(X, y)
        names = [f"f{i}" for i in range(8)]
        assert sel.selected_names(names) == ["f0", "f3"]
        with pytest.raises(ValueError):
            sel.selected_names(["a"])

    def test_feature_count_validated(self):
        X, y = self._data()
        sel = SelectByImportance(k=2).fit(X, y)
        with pytest.raises(ValueError):
            sel.transform(X[:, :4])

    def test_in_pipeline(self):
        from repro.ml.ensemble import RandomForestClassifier

        X, y = self._data(n=150)
        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("select", SelectByImportance(k=2)),
            ("clf", RandomForestClassifier(n_estimators=20, random_state=0)),
        ])
        pipe.fit(X[:120], y[:120])
        assert pipe.score(X[120:], y[120:]) > 0.6


class TestNodeState:
    def _records(self, n=12, seed=0):
        rng = np.random.default_rng(seed)
        records = []
        for i in range(n):
            records.append(SchedulerLog.make_record(
                job_id=i, architecture="VGG16", class_label=0,
                duration_s=float(rng.uniform(600, 3000)), rng=rng,
                n_nodes=int(rng.integers(1, 3)), gpus_per_node=2,
            ))
        return records

    def test_snapshots_cover_span(self):
        records = self._records()
        series = snapshot_cluster(records, n_nodes=8, dt_s=300.0)
        t, util = series.utilization_timeline()
        assert t.size >= 2
        assert util.min() >= 0.0 and util.max() <= 1.0

    def test_some_gpus_in_use_midrun(self):
        records = self._records()
        series = snapshot_cluster(records, n_nodes=8, dt_s=300.0)
        assert series.peak_concurrency() > 0

    def test_gpus_per_node_capped(self):
        records = self._records(n=30, seed=1)
        series = snapshot_cluster(records, n_nodes=2, dt_s=600.0)
        for snap in series.snapshots:
            assert snap.gpus_in_use <= 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            snapshot_cluster([])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            snapshot_cluster(self._records(), n_nodes=0)
