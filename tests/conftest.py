"""Shared fixtures: tiny simulation configs and synthetic ML datasets.

Everything here is deliberately small — the full suite must run in minutes
on one core.  Session-scoped fixtures cache the expensive builds (labelled
dataset, challenge suite) across test modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.challenge import build_challenge_suite
from repro.data.labelled import build_labelled_dataset
from repro.simcluster.cluster import SimulationConfig


TINY_SIM = SimulationConfig(
    seed=1234,
    trials_scale=0.004,
    min_jobs_per_class=2,
    duration_lognorm_mean_s=220.0,
    duration_clip_s=(150.0, 400.0),
    startup_mean_s=28.0,
)


@pytest.fixture(scope="session")
def tiny_sim_config() -> SimulationConfig:
    return TINY_SIM


@pytest.fixture(scope="session")
def labelled_tiny(tiny_sim_config):
    """A small labelled release: ~55 jobs, ~70 GPU series."""
    return build_labelled_dataset(tiny_sim_config)


@pytest.fixture(scope="session")
def challenge_suite_tiny(labelled_tiny):
    """Start/middle/random-1 datasets over the tiny release."""
    return build_challenge_suite(
        labelled_tiny,
        seed=7,
        names=("60-start-1", "60-middle-1", "60-random-1"),
    )


@pytest.fixture(scope="session")
def blobs():
    """Separable 3-class Gaussian blobs for estimator sanity checks."""
    rng = np.random.default_rng(42)
    n_per, p = 60, 6
    centers = np.array(
        [[0.0] * p, [4.0] * p, [0.0, 4.0] * (p // 2)], dtype=np.float64
    )
    X = np.vstack([rng.normal(c, 1.0, size=(n_per, p)) for c in centers])
    y = np.repeat(np.arange(3), n_per)
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


@pytest.fixture(scope="session")
def blobs_split(blobs):
    X, y = blobs
    n_train = int(0.8 * len(y))
    return X[:n_train], y[:n_train], X[n_train:], y[n_train:]
