"""Subprocess worker tests: real process isolation, real SIGKILL.

Kept deliberately small (few jobs, few ticks, at most one child process
per test) — every subprocess call is a pipe round trip on a spawn-context
child, which is slow on CI boxes.
"""

import numpy as np
import pytest

from repro.fleet import FleetRouter, FleetWorker, SubprocessWorker, WorkerUnavailable
from repro.fleet.bench import _ThresholdModel
from repro.fleet.ring import HashRing
from repro.resilience.faults import FaultSpec
from repro.serve import FleetLoadGenerator, ServeConfig, SimulatedClock
from repro.trace import TraceQuery, TraceSink, Tracer


def _series(n_rows, seed=11, n_series=4):
    rng = np.random.default_rng(seed)
    return [rng.random((n_rows, 7)) * 100.0 for _ in range(n_series)]


def _config():
    return ServeConfig(window=90, hop=90, flush_deadline_s=0.0)


def _gen(clock, *, n_jobs=4, rows=360):
    return FleetLoadGenerator(
        _series(rows), n_jobs=n_jobs, samples_per_tick=90,
        max_samples_per_job=rows, seed=5, clock=clock,
    )


def _trace(emissions):
    out = {}
    for e in emissions:
        out.setdefault(e.job_id, []).append(
            (e.prediction.sample_index, e.prediction.label,
             e.prediction.smoothed_label, e.prediction.confidence))
    return out


def test_subprocess_worker_matches_in_process_twin():
    in_clock = SimulatedClock()
    in_gen = _gen(in_clock)
    in_report = in_gen.run(
        FleetWorker("w0", _ThresholdModel(), _config(), clock=in_clock))

    sub_clock = SimulatedClock()
    sub_gen = _gen(sub_clock)
    worker = SubprocessWorker("w0", _ThresholdModel(), _config(),
                              clock=sub_clock)
    try:
        sub_report = sub_gen.run(worker)
    finally:
        worker.close()
    assert _trace(sub_report.emissions) == _trace(in_report.emissions)
    assert not worker.alive


def test_sigkilled_child_fails_over_with_parity():
    # clean twin: all in-process
    clean_clock = SimulatedClock()
    clean_gen = _gen(clean_clock)
    clean_router = FleetRouter(
        [FleetWorker(w, _ThresholdModel(), _config(), clock=clean_clock)
         for w in ("w0", "w1")],
        clock=clean_clock, history=clean_gen.job_stream,
    )
    clean = clean_gen.run(clean_router)

    # victim fleet: job 0's ring owner is the subprocess, the other
    # worker stays in-process so recovery is cheap and deterministic
    victim = HashRing(["w0", "w1"]).owner(0)
    survivor = "w1" if victim == "w0" else "w0"
    clock = SimulatedClock()
    gen = _gen(clock)
    sub = SubprocessWorker(victim, _ThresholdModel(), _config(), clock=clock)
    router = FleetRouter(
        [sub, FleetWorker(survivor, _ThresholdModel(), _config(), clock=clock)],
        clock=clock, history=gen.job_stream,
    )

    def on_tick(tick, emissions):
        if tick == 1 and victim in router.worker_ids:
            sub.kill()      # SIGKILL — the parent sees a broken pipe next

    try:
        report = gen.run(router, on_tick=on_tick)
    finally:
        for wid in router.worker_ids:
            router.worker(wid).close()
    assert _trace(report.emissions) == _trace(clean.emissions)
    events = [e for e in router.events if e.kind == "failover"]
    assert [e.worker_id for e in events] == [victim]
    assert router.worker_ids == [survivor]


def test_sigkill_mid_traced_request_marks_span_failed_and_links_failover():
    victim = HashRing(["w0", "w1"]).owner(0)
    survivor = "w1" if victim == "w0" else "w0"
    clock = SimulatedClock()
    gen = _gen(clock)
    sink = TraceSink()
    sub = SubprocessWorker(victim, _ThresholdModel(), _config(), clock=clock,
                           trace_sink=sink)
    router = FleetRouter(
        [sub,
         FleetWorker(survivor, _ThresholdModel(), _config(), clock=clock,
                     tracer=Tracer(sink, component=survivor,
                                   worker_id=survivor))],
        clock=clock, history=gen.job_stream,
        tracer=Tracer(sink, component="router"),
    )

    def on_tick(tick, emissions):
        if tick == 1 and victim in router.worker_ids:
            sub.kill()

    try:
        report = gen.run(router, on_tick=on_tick,
                         tracer=Tracer(sink, component="gen"))
    finally:
        for wid in router.worker_ids:
            router.worker(wid).close()

    # tracing must not perturb recovery: same emissions as the untraced
    # twin of test_sigkilled_child_fails_over_with_parity's clean fleet
    clean_clock = SimulatedClock()
    clean_gen = _gen(clean_clock)
    clean = clean_gen.run(FleetRouter(
        [FleetWorker(w, _ThresholdModel(), _config(), clock=clean_clock)
         for w in ("w0", "w1")],
        clock=clean_clock, history=clean_gen.job_stream,
    ))
    assert _trace(report.emissions) == _trace(clean.emissions)

    query = TraceQuery(sink.spans())
    lost = [s for s in sink.spans() if s.name == "worker.lost"]
    assert lost, "expected a worker.lost span for the killed worker's jobs"
    assert all(s.failed and s.worker_id == victim for s in lost)
    # every in-flight request the victim held gets failover spans that
    # link back to the original trace, and the tree stays connected
    for span in lost:
        replays = [s for s in sink.spans()
                   if s.trace_id == span.trace_id
                   and s.name == "failover.replay"]
        assert replays and all(
            s.annotations["links"] == span.trace_id for s in replays)
        assert query.is_connected(span.trace_id)
    # spans recorded by the child *before* the kill shipped back on each
    # pipe response — serve-stage work from the victim is visible
    assert any(s.worker_id == victim and s.name == "ingest"
               for s in sink.spans())


def test_fault_spec_shipped_to_child_sigkills_it():
    clock = SimulatedClock()
    worker = SubprocessWorker(
        "w0", _ThresholdModel(), _config(), clock=clock,
        faults=(FaultSpec("fleet.worker.crash", at_hit=2, mode="kill"),),
    )
    try:
        assert worker.step() == []          # hit 1: survives
        with pytest.raises(WorkerUnavailable):
            worker.step()                   # hit 2: child SIGKILLs itself
        assert not worker.alive
        with pytest.raises(WorkerUnavailable):
            worker.submit(0, np.ones((5, 7)))
    finally:
        worker.close()
