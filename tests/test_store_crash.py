"""Crash-safety tests for repro.store: in-process injected faults at every
store.* fault point, real SIGKILLed writer subprocesses, and a hypothesis
round-trip property over the WAL → segment → mmap read path."""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import FaultSpec, InjectedFault, inject
from repro.resilience.bench import _run_to_sigkill
from repro.store import TelemetryStore
from repro.store.bench import (
    _committed_trials,
    _crash_payload,
    _crash_store_worker,
    _victim_trial,
)


def _series(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 7)).astype(np.float32)


class TestInProcessFaults:
    """mode="raise" faults: the writer survives, state stays consistent."""

    def test_commit_is_retryable_after_wal_fault(self, tmp_path):
        store = TelemetryStore(tmp_path / "s", n_shards=1)
        store.append(0, _series(300, seed=0), label=0, model_name="m0")
        store.append(1, _series(280, seed=1), label=1, model_name="m1")
        with inject(FaultSpec("store.wal.append", at_hit=1, mode="raise")):
            with pytest.raises(InjectedFault):
                store.commit()
        # Nothing durable yet, but nothing lost either: both records are
        # still staged and the same commit can simply be retried.
        assert store._wals[0].n_staged == 2
        assert store.commit() == 2
        store.close()
        with TelemetryStore(tmp_path / "s", n_shards=1) as reopened:
            assert reopened.keys() == [(0, 0), (1, 0)]
            np.testing.assert_array_equal(
                reopened.series(0), _series(300, seed=0)
            )

    def test_flush_fault_at_segment_finalize_keeps_wal(self, tmp_path):
        store = TelemetryStore(tmp_path / "s", n_shards=1)
        store.append(0, _series(300, seed=0), label=0, model_name="m0")
        with inject(FaultSpec("store.segment.finalize", at_hit=1, mode="raise")):
            with pytest.raises(InjectedFault):
                store.flush()
        # The flush group-committed the row to the WAL before sealing, so
        # a fresh recovery serves it even though no segment landed.
        with TelemetryStore(tmp_path / "s", n_shards=1) as reopened:
            assert reopened.keys() == [(0, 0)]
            np.testing.assert_array_equal(
                reopened.series(0), _series(300, seed=0)
            )
            assert reopened._catalog == {}  # served from WAL, not a segment

    def test_flush_fault_at_manifest_swap_leaves_no_torn_state(self, tmp_path):
        store = TelemetryStore(tmp_path / "s", n_shards=2)
        for job_id in range(3):
            store.append(job_id, _series(260 + job_id, seed=job_id),
                         label=job_id, model_name=f"m{job_id}")
        with inject(FaultSpec("store.manifest.swap", at_hit=1, mode="raise")):
            with pytest.raises(InjectedFault):
                store.flush()
        # Segments were sealed but never referenced: recovery ignores
        # them, serves everything from the WALs, and gc reclaims them.
        with TelemetryStore(tmp_path / "s", n_shards=2) as reopened:
            assert reopened.keys() == [(0, 0), (1, 0), (2, 0)]
            assert reopened._catalog == {}
            stray = reopened.gc_stray()
            assert len(stray) > 0
            for job_id in range(3):
                np.testing.assert_array_equal(
                    reopened.series(job_id), _series(260 + job_id, seed=job_id)
                )


# wal.append hits once per record per commit: the workers durably commit
# two trials first, so hit 3 lands mid-frame in the victim's commit.
# Kills during the flush sequence lose nothing — the flush group-commits
# the victim to the WAL before sealing (see repro.store.bench).
_SIGKILL_SCENARIOS = [
    ("store.wal.append", 3, False),
    ("store.segment.finalize", 1, True),
    ("store.manifest.swap", 1, True),
]


class TestSigkilledWriter:
    """Real SIGKILLed subprocesses at each store.* durability point."""

    @pytest.mark.parametrize("point,at_hit,victim_survives", _SIGKILL_SCENARIOS)
    def test_reopen_serves_committed_prefix(self, tmp_path, point, at_hit,
                                            victim_survives):
        survivors = list(_committed_trials())
        if victim_survives:
            survivors.append(_victim_trial())
        root = tmp_path / "s"
        killed = _run_to_sigkill(
            _crash_store_worker, _crash_payload(root, point, at_hit, 2)
        )
        assert killed, f"worker survived fault at {point}"
        with TelemetryStore(root, n_shards=2) as store:
            assert store.keys() == [(j, 0) for j, _ in survivors]
            for job_id, series in survivors:
                np.testing.assert_array_equal(store.series(job_id), series)
            store.verify()
            store.gc_stray()
            for job_id, series in survivors:
                np.testing.assert_array_equal(store.series(job_id), series)


class TestRoundTripProperty:
    """Hypothesis: any batch of trials survives append → flush → reopen."""

    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=60),
                         min_size=1, max_size=5),
        n_shards=st.integers(min_value=1, max_value=4),
        data_seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_mmap_read_bit_identity(self, lengths, n_shards, data_seed):
        rng = np.random.default_rng(data_seed)
        trials = {
            job_id: rng.normal(size=(n, 7)).astype(np.float32)
            for job_id, n in enumerate(lengths)
        }
        with tempfile.TemporaryDirectory() as tmp:
            with TelemetryStore(tmp, n_shards=n_shards) as store:
                for job_id, series in trials.items():
                    store.append(job_id, series, label=job_id % 3,
                                 model_name=f"m{job_id % 3}")
                store.flush()
            with TelemetryStore(tmp) as store:
                assert store.n_shards == n_shards
                assert store.keys() == [(j, 0) for j in sorted(trials)]
                for job_id, series in trials.items():
                    got = store.series(job_id)
                    assert got.dtype == np.float32
                    np.testing.assert_array_equal(got, series)
                store.verify()
