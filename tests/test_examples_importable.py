"""Examples stay loadable: compile and import every script in examples/.

Full executions live outside the unit suite (several scripts train models
for minutes); importing executes only module-level code, which for the
examples is definitions plus the ``__main__`` guard — so this catches API
drift between the library and its documentation-by-example cheaply.
"""

import importlib.util
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    """The deliverable requires at least a quickstart plus domain scripts."""
    names = {p.name for p in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_and_defines_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), (
        f"{path.name} must define a main() entry point"
    )


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_has_docstring(path):
    source = path.read_text()
    assert source.lstrip().startswith('"""'), (
        f"{path.name} should open with a usage docstring"
    )
