"""Tests for the challenge core (evaluation, leaderboard, challenge object)
and the parallel substrate."""

import numpy as np
import pytest

from repro.core import (
    Leaderboard,
    Submission,
    WorkloadClassificationChallenge,
    evaluate_predictions,
)
from repro.data.dataset import ChallengeDataset
from repro.parallel import SharedArray, effective_n_jobs, parallel_map, shared_from_array


def _toy_dataset(name="60-middle-1", n_train=20, n_test=8, k=3, seed=0):
    rng = np.random.default_rng(seed)
    y_tr = rng.integers(0, k, n_train)
    y_te = rng.integers(0, k, n_test)
    X_tr = rng.normal(size=(n_train, 15, 7)).astype(np.float32)
    X_te = rng.normal(size=(n_test, 15, 7)).astype(np.float32)
    for c in range(k):
        X_tr[y_tr == c, :, c] += 3.0
        X_te[y_te == c, :, c] += 3.0
    names = np.array(["m"] * n_train), np.array(["m"] * n_test)
    return ChallengeDataset(
        name=name, X_train=X_tr, y_train=y_tr, model_train=names[0],
        X_test=X_te, y_test=y_te, model_test=names[1],
    )


class TestEvaluation:
    def test_perfect_predictions(self):
        ds = _toy_dataset()
        result = evaluate_predictions(ds, ds.y_test)
        assert result["accuracy"] == 1.0
        assert result["macro_f1"] == 1.0
        assert result["confusion"].trace() == ds.n_test

    def test_wrong_length_rejected(self):
        ds = _toy_dataset()
        with pytest.raises(ValueError, match="predictions"):
            evaluate_predictions(ds, ds.y_test[:-1])

    def test_submission_validation(self):
        with pytest.raises(ValueError, match="entrant"):
            Submission(entrant="", dataset_name="x", predictions=np.zeros(3, int))
        with pytest.raises(ValueError, match="1-D"):
            Submission(entrant="a", dataset_name="x",
                       predictions=np.zeros((2, 2), int))


class TestLeaderboard:
    def test_submit_and_rank(self):
        ds = _toy_dataset()
        board = Leaderboard({ds.name: ds})
        board.submit(Submission("perfect", ds.name, ds.y_test))
        wrong = (ds.y_test + 1) % 3
        board.submit(Submission("awful", ds.name, wrong))
        ranking = board.ranking(ds.name)
        assert ranking[0].entrant == "perfect"
        assert board.best(ds.name).accuracy == 1.0

    def test_unknown_dataset(self):
        ds = _toy_dataset()
        board = Leaderboard({ds.name: ds})
        with pytest.raises(KeyError):
            board.submit(Submission("a", "nope", ds.y_test))

    def test_format(self):
        ds = _toy_dataset()
        board = Leaderboard({ds.name: ds})
        assert board.format() == "(no submissions)"
        board.submit(Submission("team-a", ds.name, ds.y_test))
        out = board.format()
        assert "team-a" in out and "100.00" in out


class TestChallengeObject:
    def test_from_simulation_tiny(self, challenge_suite_tiny):
        ch = WorkloadClassificationChallenge(dict(challenge_suite_tiny))
        assert set(ch.dataset_names()) == set(challenge_suite_tiny)
        assert len(ch.class_names) == 26

    def test_evaluate_protocol(self, challenge_suite_tiny):
        from repro.models import make_rf_cov

        ch = WorkloadClassificationChallenge(dict(challenge_suite_tiny))
        result = ch.evaluate(make_rf_cov(n_estimators=10), "60-middle-1")
        assert 0.0 <= result["accuracy"] <= 1.0
        assert result["n_test"] == ch.dataset("60-middle-1").n_test

    def test_submit_records_entry(self, challenge_suite_tiny):
        ch = WorkloadClassificationChallenge(dict(challenge_suite_tiny))
        ds = ch.dataset("60-middle-1")
        entry = ch.submit("baseline", "60-middle-1", ds.y_test)
        assert entry.accuracy == 1.0
        assert ch.leaderboard.best("60-middle-1") is not None

    def test_unknown_dataset_raises(self, challenge_suite_tiny):
        ch = WorkloadClassificationChallenge(dict(challenge_suite_tiny))
        with pytest.raises(KeyError, match="unknown dataset"):
            ch.dataset("60-end-1")

    def test_save_and_reload(self, challenge_suite_tiny, tmp_path):
        ch = WorkloadClassificationChallenge(dict(challenge_suite_tiny))
        ch.save(tmp_path)
        loaded = WorkloadClassificationChallenge.from_directory(
            tmp_path, names=tuple(challenge_suite_tiny))
        np.testing.assert_array_equal(
            loaded.dataset("60-middle-1").y_test,
            ch.dataset("60-middle-1").y_test,
        )

    def test_summary_table(self, challenge_suite_tiny):
        ch = WorkloadClassificationChallenge(dict(challenge_suite_tiny))
        out = ch.summary()
        assert "60-middle-1" in out and "540" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WorkloadClassificationChallenge({})


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], n_jobs=1) == [1, 4, 9]

    def test_order_preserved(self):
        out = parallel_map(_square, list(range(20)), n_jobs=2)
        assert out == [i * i for i in range(20)]

    def test_single_item(self):
        assert parallel_map(_square, [5], n_jobs=4) == [25]

    def test_effective_n_jobs(self):
        import os

        cores = os.cpu_count() or 1
        assert effective_n_jobs(None) == cores
        assert effective_n_jobs(-1) == cores
        assert effective_n_jobs(1) == 1
        assert effective_n_jobs(10_000) == cores
        with pytest.raises(ValueError):
            effective_n_jobs(0)

    def test_empty(self):
        assert parallel_map(_square, []) == []


class TestSharedArray:
    def test_round_trip(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        shared = shared_from_array(arr)
        try:
            view = shared.handle().attach()
            np.testing.assert_array_equal(view, arr)
        finally:
            shared.close()

    def test_mutations_visible_through_handle(self):
        arr = np.zeros(5)
        shared = shared_from_array(arr)
        try:
            shared.array[2] = 42.0
            view = shared.handle().attach()
            assert view[2] == 42.0
        finally:
            shared.close()

    def test_context_manager(self):
        with shared_from_array(np.ones(3)) as shared:
            handle = shared.handle()
            assert handle.shape == (3,)
        with pytest.raises(RuntimeError):
            shared.handle()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SharedArray((0,), np.float64)

    def test_handle_is_picklable(self):
        import pickle

        shared = shared_from_array(np.arange(4))
        try:
            handle2 = pickle.loads(pickle.dumps(shared.handle()))
            np.testing.assert_array_equal(handle2.attach(), np.arange(4))
        finally:
            shared.close()
