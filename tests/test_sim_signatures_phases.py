"""Tests for class signatures and the phase-schedule model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simcluster.architectures import ARCHITECTURES, get_architecture
from repro.simcluster.phases import (
    Phase,
    PhaseKind,
    PhaseSchedule,
    build_phase_schedule,
)
from repro.simcluster.signatures import signature_for


class TestSignatures:
    def test_deterministic(self):
        spec = get_architecture("VGG16")
        assert signature_for(spec) == signature_for(spec)

    def test_all_classes_have_distinct_signatures(self):
        sigs = [signature_for(a) for a in ARCHITECTURES]
        # At least the (util_mean, step_period, mem_used) triple must be
        # unique per class — that's the core discriminability assumption.
        keys = {(round(s.util_mean, 4), round(s.step_period_s, 4),
                 round(s.mem_used_mib, 1)) for s in sigs}
        assert len(keys) == len(ARCHITECTURES)

    def test_physical_ranges(self):
        for a in ARCHITECTURES:
            s = signature_for(a)
            assert 0 < s.util_mean <= 100
            assert s.util_amp > 0
            assert s.step_period_s > 0
            assert 0 < s.duty < 1
            assert 0 < s.mem_used_mib < 32_510
            assert 0 < s.mem_util_mean <= 100
            assert 0 <= s.mem_util_coupling <= 1
            assert s.epoch_period_s > 0
            assert 0 <= s.epoch_dip_depth <= 1
            assert s.power_base_w > 0 and s.power_per_util > 0
            assert s.startup_alloc_steps >= 1

    def test_bigger_variant_higher_util_within_family(self):
        """Within a family, the largest variant should sustain at least as
        much utilization as the smallest (size-driven separation)."""
        for fam_members in (
            ["VGG11", "VGG19"],
            ["ResNet50", "ResNet152_v2"],
            ["U3-32", "U5-128"],
        ):
            lo = signature_for(get_architecture(fam_members[0]))
            hi = signature_for(get_architecture(fam_members[1]))
            assert hi.util_mean > lo.util_mean
            assert hi.mem_used_mib > lo.mem_used_mib

    def test_gnn_low_utilization(self):
        """GNNs are sparse, spiky workloads in our model."""
        gnn = signature_for(get_architecture("NNConv"))
        nlp = signature_for(get_architecture("Bert"))
        assert gnn.util_mean < nlp.util_mean


class TestPhaseValidation:
    def test_phase_positive_duration(self):
        with pytest.raises(ValueError, match="non-positive"):
            Phase(PhaseKind.TRAIN, 5.0, 5.0)

    def test_schedule_rejects_gap(self):
        phases = (
            Phase(PhaseKind.STARTUP, 0.0, 10.0),
            Phase(PhaseKind.TRAIN, 12.0, 20.0),
        )
        with pytest.raises(ValueError, match="gap"):
            PhaseSchedule(phases, 20.0)

    def test_schedule_rejects_wrong_total(self):
        phases = (Phase(PhaseKind.STARTUP, 0.0, 10.0),)
        with pytest.raises(ValueError, match="total"):
            PhaseSchedule(phases, 20.0)


class TestBuildSchedule:
    def _sig(self):
        return signature_for(get_architecture("ResNet50"))

    def test_covers_duration(self):
        sched = build_phase_schedule(self._sig(), 300.0, np.random.default_rng(0))
        assert sched.phases[0].start_s == 0.0
        assert sched.phases[-1].end_s == pytest.approx(300.0)

    def test_starts_with_startup_ends_with_cooldown(self):
        sched = build_phase_schedule(self._sig(), 300.0, np.random.default_rng(1))
        assert sched.phases[0].kind is PhaseKind.STARTUP
        assert sched.phases[-1].kind is PhaseKind.COOLDOWN

    def test_contains_training(self):
        sched = build_phase_schedule(self._sig(), 300.0, np.random.default_rng(2))
        kinds = {p.kind for p in sched.phases}
        assert PhaseKind.TRAIN in kinds
        assert PhaseKind.WARMUP in kinds

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            build_phase_schedule(self._sig(), 20.0, np.random.default_rng(0),
                                 startup_mean_s=40.0)

    def test_kind_at_vectorized(self):
        sched = build_phase_schedule(self._sig(), 300.0, np.random.default_rng(3))
        t = np.linspace(0, 299.9, 500)
        codes = sched.kind_at(t)
        assert codes.shape == (500,)
        # First timestamp is startup.
        assert codes[0] == list(PhaseKind).index(PhaseKind.STARTUP)

    def test_mask_partition(self):
        """Every timestamp belongs to exactly one phase kind."""
        sched = build_phase_schedule(self._sig(), 300.0, np.random.default_rng(4))
        t = np.linspace(0, 299.9, 400)
        total = np.zeros(400, dtype=int)
        for kind in PhaseKind:
            total += sched.mask(t, kind).astype(int)
        np.testing.assert_array_equal(total, np.ones(400, dtype=int))

    def test_first_lookup(self):
        sched = build_phase_schedule(self._sig(), 300.0, np.random.default_rng(5))
        assert sched.first(PhaseKind.STARTUP).start_s == 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.floats(min_value=150.0, max_value=900.0))
    def test_property_schedule_wellformed(self, seed, total_s):
        """Any seed/duration yields a contiguous, monotone schedule."""
        sched = build_phase_schedule(
            self._sig(), total_s, np.random.default_rng(seed)
        )
        t = 0.0
        for ph in sched.phases:
            assert ph.start_s == pytest.approx(t)
            assert ph.end_s > ph.start_s
            t = ph.end_s
        assert t == pytest.approx(total_s)
