"""Tests for the future-work extensions: ConvLSTM, CPU+GPU fusion, and
full-trace classification."""

import numpy as np
import pytest

from repro.data.fulltrace import full_trace_covariance, full_trace_features
from repro.data.fusion import (
    build_fused_dataset,
    cpu_feature_names,
    cpu_summary_features,
)
from repro.models.convlstm_model import ConvLSTMClassifier
from repro.nn import Tensor
from repro.nn.layers.conv import Conv1d, conv_output_length, resolve_padding
from repro.nn.layers.convlstm import ConvLSTM1d, segment_sequence
from repro.simcluster.cluster import ClusterSimulator
from tests.test_nn_tensor import numerical_grad


class TestPaddedConv:
    def test_same_padding_preserves_length(self):
        conv = Conv1d(3, 4, kernel_size=5, padding="same", rng=0)
        out = conv(Tensor(np.random.default_rng(0).normal(size=(2, 17, 3))))
        assert out.shape == (2, 17, 4)

    def test_explicit_padding_length(self):
        assert conv_output_length(10, 3, 1, padding=2) == 12

    def test_same_requires_odd_kernel(self):
        with pytest.raises(ValueError, match="odd"):
            resolve_padding("same", 4)

    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            resolve_padding(-1, 3)

    def test_padded_gradcheck(self):
        conv = Conv1d(2, 2, kernel_size=3, padding="same", rng=1)
        for p in conv.parameters():
            p.data = p.data.astype(np.float64)
        x_data = np.random.default_rng(2).normal(size=(2, 5, 2))
        x = Tensor(x_data, requires_grad=True, dtype=np.float64)
        conv(x).sum().backward()

        def f():
            return float(conv(Tensor(x_data, dtype=np.float64)).data.sum())

        np.testing.assert_allclose(x.grad, numerical_grad(f, x_data),
                                   atol=1e-6)


class TestSegmentSequence:
    def test_shape(self):
        x = np.arange(2 * 12 * 3, dtype=float).reshape(2, 12, 3)
        seg = segment_sequence(x, 4)
        assert seg.shape == (2, 4, 3, 3)
        np.testing.assert_array_equal(seg[0, 0], x[0, :3])

    def test_drops_remainder(self):
        x = np.zeros((1, 13, 2))
        seg = segment_sequence(x, 4)
        assert seg.shape == (1, 4, 3, 2)

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            segment_sequence(np.zeros((1, 5, 2)), 9)

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            segment_sequence(np.zeros((5, 2)), 2)


class TestConvLSTM1d:
    def test_output_shape(self):
        layer = ConvLSTM1d(3, 6, kernel_size=3, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 9, 3))
                   .astype(np.float32))
        out = layer(x)
        assert out.shape == (2, 4, 9, 6)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            ConvLSTM1d(3, 6, kernel_size=4)

    def test_wrong_channels(self):
        layer = ConvLSTM1d(3, 6, rng=0)
        with pytest.raises(ValueError, match="expected"):
            layer(Tensor(np.zeros((1, 2, 9, 4), dtype=np.float32)))

    def test_state_evolves_across_segments(self):
        layer = ConvLSTM1d(2, 4, kernel_size=3, rng=1)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 5, 7, 2))
                   .astype(np.float32))
        out = layer(x).data
        # Later states should differ from the first (memory accumulates).
        assert np.abs(out[0, -1] - out[0, 0]).max() > 1e-4

    def test_gradients_flow(self):
        layer = ConvLSTM1d(2, 3, kernel_size=3, rng=2)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3, 5, 2))
                   .astype(np.float32), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        for name, p in layer.named_parameters():
            assert p.grad is not None, name

    def test_gradcheck_tiny(self):
        layer = ConvLSTM1d(1, 2, kernel_size=3, rng=3)
        for p in layer.parameters():
            p.data = p.data.astype(np.float64)
        x_data = np.random.default_rng(3).normal(size=(1, 2, 5, 1))
        x = Tensor(x_data, requires_grad=True, dtype=np.float64)
        layer(x).sum().backward()

        def f():
            return float(layer(Tensor(x_data, dtype=np.float64)).data.sum())

        np.testing.assert_allclose(x.grad, numerical_grad(f, x_data),
                                   atol=2e-2, rtol=1e-3)


class TestConvLSTMClassifier:
    def test_forward_shape_and_distribution(self):
        model = ConvLSTMClassifier(n_sensors=7, seq_len=60, n_classes=5,
                                   n_segments=6, hidden_channels=4,
                                   head_width=8, seed=0)
        model.eval()
        out = model(Tensor(np.zeros((3, 60, 7), dtype=np.float32)))
        assert out.shape == (3, 5)
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0,
                                   atol=1e-5)

    def test_learns_separable_classes(self):
        from repro.nn import Adam, NLLLoss

        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 60, 7)).astype(np.float32)
        y = rng.integers(0, 3, 30)
        for c in range(3):
            X[y == c, :, c] += 2.5
        model = ConvLSTMClassifier(n_sensors=7, seq_len=60, n_classes=3,
                                   n_segments=6, hidden_channels=6,
                                   head_width=16, seed=0)
        opt = Adam(model.parameters(), lr=5e-3)
        loss_fn = NLLLoss()
        for _ in range(25):
            out = model(Tensor(X))
            loss = loss_fn(out, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert (model.predict(X) == y).mean() > 0.7

    def test_segment_kernel_validation(self):
        with pytest.raises(ValueError, match="shorter than kernel"):
            ConvLSTMClassifier(seq_len=60, n_segments=30, kernel_size=5)


class TestCpuFusion:
    @pytest.fixture(scope="class")
    def jobs(self, tiny_sim_config):
        jobs, _ = ClusterSimulator(tiny_sim_config).generate()
        return jobs

    def test_feature_names_align_with_vector(self, jobs):
        names = cpu_feature_names()
        vec = cpu_summary_features(jobs[0].cpu_series)
        assert len(names) == vec.shape[0]
        assert "rate(ReadMB)" in names
        assert "mean(CPUUtilization)" in names

    def test_rates_nonnegative(self, jobs):
        names = cpu_feature_names()
        rate_cols = [i for i, n in enumerate(names) if n.startswith("rate(")]
        for job in jobs[:10]:
            vec = cpu_summary_features(job.cpu_series)
            assert np.all(vec[rate_cols] >= -1e-9)

    def test_fused_dataset_alignment(self, jobs):
        gpu_idx, cpu_feats, labels, job_ids = build_fused_dataset(jobs)
        n_trials = sum(len(j.gpu_series) for j in jobs)
        assert gpu_idx.shape == (n_trials,)
        assert cpu_feats.shape == (n_trials, len(cpu_feature_names()))
        assert labels.shape == (n_trials,)
        # Trials of one job share the CPU vector and the label.
        for j, job in enumerate(jobs[:5]):
            mask = gpu_idx == j
            if mask.sum() > 1:
                rows = cpu_feats[mask]
                np.testing.assert_array_equal(rows[0], rows[1])
            assert np.all(labels[mask] == job.record.class_label)

    def test_missing_cpu_rejected(self, jobs):
        import copy

        broken = [copy.copy(jobs[0])]
        broken[0].cpu_series = None
        with pytest.raises(ValueError, match="no CPU series"):
            build_fused_dataset(broken)


class TestFullTrace:
    def test_features_shape(self, labelled_tiny):
        X, y, job_ids = full_trace_features(labelled_tiny)
        assert X.shape == (len(labelled_tiny), 28)
        assert y.shape == job_ids.shape == (len(labelled_tiny),)

    def test_length_invariance_of_representation(self):
        """A stationary series yields (nearly) the same features at any
        length — the property that makes full traces and 60 s windows
        directly comparable."""
        rng = np.random.default_rng(0)
        cov = np.array([[1.0, 0.6], [0.6, 2.0]])
        chol = np.linalg.cholesky(cov)
        long = (rng.normal(size=(20000, 2)) @ chol.T)
        mean = np.zeros(2)
        scale = np.ones(2)
        f_long = full_trace_covariance(long, mean, scale)
        f_short = full_trace_covariance(long[:5000], mean, scale)
        np.testing.assert_allclose(f_long, f_short, atol=0.1)

    def test_separability_not_destroyed(self, labelled_tiny):
        """Full-trace features must classify above chance on the tiny set."""
        from repro.ml.ensemble import RandomForestClassifier

        X, y, _ = full_trace_features(labelled_tiny)
        clf = RandomForestClassifier(n_estimators=20, random_state=0,
                                     oob_score=True).fit(X, y)
        assert clf.oob_score_ > 1.5 / 26

    def test_empty_dataset(self):
        from repro.data.dataset import LabelledDataset

        with pytest.raises(ValueError, match="empty"):
            full_trace_features(LabelledDataset([]))


class TestTraceMoments:
    """Streaming (count, sum, gram) accumulation vs the dense reference."""

    def _standardizers(self, series):
        mean = series.mean(axis=0)
        scale = series.std(axis=0) + 1e-8
        return mean, scale

    def test_chunked_covariance_bit_identical_single_chunk(self):
        from repro.data.fulltrace import DEFAULT_CHUNK_ROWS, _full_trace_covariance_dense

        rng = np.random.default_rng(0)
        series = rng.normal(size=(2000, 7))
        assert series.shape[0] <= DEFAULT_CHUNK_ROWS
        mean, scale = self._standardizers(series)
        np.testing.assert_array_equal(
            full_trace_covariance(series, mean, scale),
            _full_trace_covariance_dense(series, mean, scale),
        )

    def test_chunked_covariance_close_across_chunks(self):
        from repro.data.fulltrace import _full_trace_covariance_dense

        rng = np.random.default_rng(1)
        series = rng.normal(size=(5000, 7))
        mean, scale = self._standardizers(series)
        chunked = full_trace_covariance(series, mean, scale, chunk_rows=512)
        dense = _full_trace_covariance_dense(series, mean, scale)
        np.testing.assert_allclose(chunked, dense, rtol=1e-10, atol=1e-12)

    def test_moments_update_and_merge(self):
        from repro.data.fulltrace import TraceMoments

        rng = np.random.default_rng(2)
        series = rng.normal(size=(900, 7)).astype(np.float32)
        mean, scale = self._standardizers(series)

        whole = TraceMoments(n_sensors=7).update(series)
        left = TraceMoments(n_sensors=7).update(series[:400])
        right = TraceMoments(n_sensors=7).update(series[400:])
        merged = left.merge(right)
        assert merged.count == whole.count == 900
        np.testing.assert_allclose(merged.sum, whole.sum, rtol=1e-12)
        np.testing.assert_allclose(merged.gram, whole.gram, rtol=1e-12)
        np.testing.assert_allclose(
            merged.standardized_covariance(mean, scale),
            full_trace_covariance(series, mean, scale),
            rtol=1e-6, atol=1e-9,
        )

    def test_features_parity_with_per_trial_dense(self, labelled_tiny):
        """full_trace_features equals the per-trial dense computation
        under the pooled mean/scale it reports."""
        from repro.data.fulltrace import _full_trace_covariance_dense

        subset = type(labelled_tiny)(labelled_tiny.trials[:5])
        X, _, _ = full_trace_features(subset)
        stacked = np.concatenate([np.asarray(t.series, dtype=np.float64)
                                  for t in subset], axis=0)
        mean = stacked.mean(axis=0)
        var = stacked.var(axis=0)
        scale = np.where(var > 0, np.sqrt(var), 1.0)
        for i, trial in enumerate(subset):
            np.testing.assert_allclose(
                X[i],
                _full_trace_covariance_dense(
                    np.asarray(trial.series, dtype=np.float64), mean, scale),
                rtol=1e-7, atol=1e-9,
            )
