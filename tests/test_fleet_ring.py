"""Property tests for the consistent-hash ring (repro.fleet.ring)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import HashRing

KEYS = [f"job-{i}" for i in range(600)]

worker_sets = st.sets(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=10
).map(lambda ids: [f"w{i}" for i in sorted(ids)])


class TestBalance:
    @settings(deadline=None, max_examples=50)
    @given(
        n_workers=st.integers(min_value=2, max_value=8),
        vnodes=st.sampled_from([64, 128, 256]),
        salt=st.sampled_from(["repro-fleet", "a", "bench"]),
    )
    def test_load_within_tolerance_at_64_plus_vnodes(
        self, n_workers, vnodes, salt
    ):
        """No worker owns more than 3x its fair share of keys."""
        ring = HashRing(
            [f"w{i}" for i in range(n_workers)], vnodes=vnodes, salt=salt
        )
        owners = ring.owners(KEYS)
        fair = len(KEYS) / n_workers
        counts = {w: 0 for w in ring.workers}
        for owner in owners.values():
            counts[owner] += 1
        assert max(counts.values()) <= 3.0 * fair

    def test_spans_sum_to_one(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        spans = ring.spans()
        assert set(spans) == {"a", "b", "c"}
        assert sum(spans.values()) == pytest.approx(1.0)
        assert all(s > 0 for s in spans.values())


class TestMinimalChurn:
    @settings(deadline=None, max_examples=50)
    @given(workers=worker_sets, vnodes=st.sampled_from([64, 128]))
    def test_add_only_moves_keys_onto_the_new_worker(self, workers, vnodes):
        ring = HashRing(workers, vnodes=vnodes)
        before = ring.owners(KEYS)
        ring.add("w-new")
        after = ring.owners(KEYS)
        for key in KEYS:
            if after[key] != before[key]:
                assert after[key] == "w-new"

    @settings(deadline=None, max_examples=50)
    @given(workers=worker_sets, vnodes=st.sampled_from([64, 128]))
    def test_remove_only_moves_the_removed_workers_keys(self, workers, vnodes):
        victim = workers[0]
        ring = HashRing(workers, vnodes=vnodes)
        if len(workers) == 1:
            return  # removing the only worker leaves nothing to route to
        before = ring.owners(KEYS)
        ring.remove(victim)
        after = ring.owners(KEYS)
        for key in KEYS:
            if before[key] == victim:
                assert after[key] != victim
            else:
                assert after[key] == before[key]

    @settings(deadline=None, max_examples=30)
    @given(workers=worker_sets, vnodes=st.sampled_from([64, 128]))
    def test_add_then_remove_restores_exact_assignment(self, workers, vnodes):
        ring = HashRing(workers, vnodes=vnodes)
        before = ring.owners(KEYS)
        ring.add("w-new")
        ring.remove("w-new")
        assert ring.owners(KEYS) == before

    def test_churn_fraction_is_bounded_on_grow(self):
        for n in (2, 4, 8):
            ring = HashRing([f"w{i}" for i in range(n)], vnodes=128)
            before = ring.owners(KEYS)
            ring.add("w-new")
            churn = HashRing.churn(before, ring.owners(KEYS))
            assert churn <= 2.0 / (n + 1)


class TestRingBasics:
    def test_same_config_same_owners(self):
        a = HashRing(["x", "y", "z"], vnodes=64, salt="s")
        b = HashRing(["z", "x", "y"], vnodes=64, salt="s")
        assert a.owners(KEYS) == b.owners(KEYS)

    def test_salt_decorrelates_rings(self):
        a = HashRing(["x", "y", "z"], vnodes=64, salt="s1")
        b = HashRing(["x", "y", "z"], vnodes=64, salt="s2")
        assert a.owners(KEYS) != b.owners(KEYS)

    def test_membership_and_len(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.workers == ["a", "b"]

    def test_duplicate_add_raises(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already"):
            ring.add("a")

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            HashRing(["a"]).remove("b")

    def test_empty_ring_owner_raises(self):
        with pytest.raises(LookupError):
            HashRing().owner("job-1")

    def test_churn_requires_same_key_set(self):
        with pytest.raises(ValueError, match="same keys"):
            HashRing.churn({"a": "w"}, {"b": "w"})

    def test_invalid_vnodes(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)
