"""Monitor subsystem tests: drift, shadow, rollout, alerts, injection."""

import numpy as np
import pytest

from repro.monitor import (
    AlertManager,
    AlertRule,
    CanaryController,
    DriftConfig,
    DriftInjection,
    FleetDriftMonitor,
    MonitorBenchConfig,
    PageHinkley,
    RolloutConfig,
    SensorDriftDetector,
    ShadowEvaluator,
    inject_series,
)
from repro.monitor.rollout import CANARY, PROMOTED, ROLLED_BACK, SHADOW
from repro.serve import MetricsRegistry, ModelRegistry


def _stationary(n, seed=0, loc=(50.0, 30.0, 20000.0, 12000.0, 50.0, 55.0, 150.0)):
    """IID Gaussian telemetry around realistic operating points."""
    rng = np.random.default_rng(seed)
    out = rng.normal(0.0, 1.0, size=(n, 7)) * np.array(
        [8.0, 5.0, 300.0, 300.0, 0.5, 0.5, 20.0]
    )
    return out + np.asarray(loc)


class TestPageHinkley:
    def test_no_false_positives_on_stationary_noise(self):
        """Default thresholds stay silent over >= 10 seeds of iid noise."""
        for seed in range(12):
            rng = np.random.default_rng(seed)
            ph = PageHinkley()
            assert not any(ph.update(x) for x in rng.normal(size=4000))

    def test_detects_mean_shift_within_bounded_samples(self):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            ph = PageHinkley()
            assert not any(ph.update(x) for x in rng.normal(size=500))
            detected_at = None
            for i, x in enumerate(rng.normal(loc=2.0, size=400)):
                if ph.update(x):
                    detected_at = i
                    break
            assert detected_at is not None and detected_at < 200

    def test_detects_downward_shift(self):
        rng = np.random.default_rng(3)
        ph = PageHinkley()
        assert not any(ph.update(x) for x in rng.normal(size=500))
        assert any(ph.update(x) for x in rng.normal(loc=-2.0, size=400))

    def test_reset_after_fire_and_validation(self):
        ph = PageHinkley(delta=0.05, threshold=5.0)
        rng = np.random.default_rng(0)
        list(map(ph.update, rng.normal(size=100)))
        assert any(ph.update(x) for x in rng.normal(loc=3.0, size=200))
        assert ph.statistic == 0.0          # reset on fire
        with pytest.raises(ValueError, match="positive"):
            PageHinkley(delta=0.0)


class TestSensorDriftDetector:
    def test_stationary_stream_stays_silent(self):
        for seed in range(10):
            det = SensorDriftDetector(seed)
            assert det.update_many(_stationary(3000, seed=seed)) == []
            assert not det.drifted

    def test_injected_gain_detected_with_bounded_latency(self):
        inj = DriftInjection(start_sample=1200, ramp_samples=270,
                             gain=1.6, sensors=(0, 6))
        latencies = []
        for seed in range(10):
            det = SensorDriftDetector(seed)
            events = det.update_many(
                inject_series(_stationary(3000, seed=seed), inj))
            assert events, f"seed {seed} missed the injected gain"
            assert det.first_event_sample >= inj.start_sample
            latencies.append(det.first_event_sample - inj.start_sample)
        assert max(latencies) <= 2 * 270 + 90   # ramp + one check period

    def test_injected_offset_detected(self):
        inj = DriftInjection(start_sample=1200, ramp_samples=270,
                             offset=30.0, sensors=(6,))
        det = SensorDriftDetector()
        events = det.update_many(
            inject_series(_stationary(2400, seed=4), inj))
        assert any(e.sensor == "power_draw_W" for e in events)

    def test_state_is_bounded(self):
        """O(window) state: nothing grows with stream length."""
        det = SensorDriftDetector(config=DriftConfig(window=270))
        det.update_many(_stationary(2000, seed=1))
        rows_at_2k = len(det._rows)
        fired_at_2k = len(det._last_fired)
        det.update_many(_stationary(8000, seed=2))
        assert len(det._rows) == rows_at_2k == 270
        assert det._ref_rows is None            # reference buffer freed
        # _last_fired is keyed by (kind, sensor): bounded by the schema,
        # not the stream.
        assert len(det._last_fired) <= 3 * 28
        assert fired_at_2k <= len(det._last_fired)

    def test_warmup_skips_leading_samples(self):
        cfg = DriftConfig(warmup=500, reference=270)
        det = SensorDriftDetector(config=cfg)
        det.update_many(_stationary(400, seed=0) * 100.0)  # wild warmup
        assert not det.ready
        det.update_many(_stationary(800, seed=1))
        assert det.ready
        assert det.update_many(_stationary(600, seed=2)) == []

    def test_events_carry_sensor_names_and_cooldown(self):
        inj = DriftInjection(start_sample=1200, ramp_samples=90,
                             gain=2.0, sensors=(0,))
        det = SensorDriftDetector("job-7")
        events = det.update_many(
            inject_series(_stationary(3000, seed=5), inj))
        util = [e for e in events if e.sensor == "utilization_gpu_pct"
                and e.kind == "mean"]
        assert util and all(e.session_id == "job-7" for e in util)
        gaps = np.diff([e.sample_index for e in util])
        assert (gaps >= det.config.cooldown).all()

    def test_row_shape_validated(self):
        det = SensorDriftDetector()
        with pytest.raises(ValueError, match="row"):
            det.update(np.zeros(5))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="reference"):
            DriftConfig(reference=8, n_blocks=6)
        with pytest.raises(ValueError, match="warmup"):
            DriftConfig(warmup=-1)
        with pytest.raises(ValueError, match="positive"):
            DriftConfig(z_mean=0.0)
        with pytest.raises(ValueError, match="floor"):
            DriftConfig(mean_floor_frac=-0.1)


class TestFleetDriftMonitor:
    def _drive(self, monitor, streams, chunk=90):
        n = max(len(s) for s in streams)
        for start in range(0, n, chunk):
            for job, s in enumerate(streams):
                piece = s[start:start + chunk]
                if len(piece):
                    monitor.on_ingress(job, piece)

    def test_tracks_sessions_and_detections(self):
        inj = DriftInjection(start_sample=1200, ramp_samples=270,
                             gain=1.6, sensors=(0, 6))
        streams = [inject_series(_stationary(2400, seed=s), inj)
                   for s in range(4)]
        streams += [_stationary(2400, seed=s) for s in range(4, 8)]
        metrics = MetricsRegistry()
        monitor = FleetDriftMonitor(metrics=metrics)
        self._drive(monitor, streams)
        first = monitor.first_detections()
        assert set(first) == {0, 1, 2, 3}
        latencies = monitor.detection_latencies(1200)
        assert len(latencies) == 4
        assert all(0 <= lat <= 720 for lat in latencies.values())
        assert monitor.drifted_fraction == pytest.approx(0.5)
        snap = metrics.as_dict()
        assert snap["monitor.drift.sessions_drifted"] == 4
        assert snap["monitor.drift.events"] >= 4

    def test_drifting_fraction_is_recency_windowed(self):
        inj = DriftInjection(start_sample=1200, ramp_samples=90,
                             gain=1.8, sensors=(0,))
        monitor = FleetDriftMonitor(config=DriftConfig(horizon=540))
        streams = [inject_series(_stationary(4000, seed=s), inj)
                   for s in range(3)]
        self._drive(monitor, [s[:1800] for s in streams])
        assert monitor.drifting_fraction == 1.0     # all just fired
        # The injected gain *holds*, so windows far past the ramp look like
        # the new normal again: detectors go quiet and recency decays.
        self._drive(monitor, [s[1800:] for s in streams])
        assert monitor.drifting_fraction < 1.0 or all(
            d.last_event_sample > 3400 - 540
            for d in monitor._detectors.values())

    def test_end_session_frees_detector_keeps_history(self):
        monitor = FleetDriftMonitor()
        monitor.on_ingress("a", _stationary(600, seed=0))
        assert monitor.n_sessions == 1
        assert monitor.end_session("a")
        assert not monitor.end_session("a")
        assert monitor.n_sessions == 0

    def test_detection_latencies_exclude_pre_start_firings(self):
        monitor = FleetDriftMonitor()
        monitor._first_detection = {"early": 500, "late": 1500}
        monitor._seen = {"early", "late"}
        assert monitor.detection_latencies(1000) == {"late": 500}


class TestInjection:
    def test_pre_start_untouched_and_pure(self):
        series = _stationary(1000, seed=0)
        before = series.copy()
        inj = DriftInjection(start_sample=400, ramp_samples=100,
                             gain=1.5, sensors=(0,))
        out = inject_series(series, inj)
        np.testing.assert_array_equal(series, before)     # no mutation
        np.testing.assert_array_equal(out[:400], series[:400])
        assert not np.array_equal(out[600:], series[600:])

    def test_full_ramp_gain_and_offset(self):
        series = np.full((300, 7), 50.0)
        inj = DriftInjection(start_sample=0, ramp_samples=1, gain=1.4,
                             offset=3.0, sensors=(0,), clip=False)
        out = inject_series(series, inj)
        np.testing.assert_allclose(out[2:, 0], 50.0 * 1.4 + 3.0)
        np.testing.assert_allclose(out[:, 1:], 50.0)

    def test_clipping_to_physical_range(self):
        series = np.full((100, 7), 90.0)
        inj = DriftInjection(start_sample=0, ramp_samples=1, gain=2.0)
        out = inject_series(series, inj)
        assert out[:, 0].max() <= 100.0       # utilization_gpu_pct
        assert out[:, 1].max() <= 100.0

    def test_noop_injection_returns_input(self):
        series = _stationary(100, seed=0)
        inj = DriftInjection(gain=1.0, offset=0.0)
        assert inject_series(series, inj) is series
        assert not inj.perturbs_sensors

    def test_validation(self):
        with pytest.raises(ValueError, match="sensor indices"):
            DriftInjection(sensors=(9,))
        with pytest.raises(ValueError, match="class_shift_fraction"):
            DriftInjection(class_shift_fraction=1.5)
        with pytest.raises(ValueError, match="ramp_samples"):
            DriftInjection(ramp_samples=0)
        with pytest.raises(ValueError, match="expected"):
            inject_series(np.zeros((10, 5)),
                          DriftInjection(gain=2.0))


class _Window:
    """Minimal stand-ins for server completion objects."""

    def __init__(self, window):
        self.window = window


class _Completion:
    def __init__(self, window, label):
        self.request = _Window(window)
        self.label = label


class _SignModel:
    """Labels by the sign of sensor 0's window mean."""

    def __init__(self, flip=False):
        self.flip = flip

    def predict(self, X):
        X = np.asarray(X)
        labels = (X[:, :, 0].mean(axis=1) > 0).astype(np.int64)
        return 1 - labels if self.flip else labels


def _batch(levels, model):
    """Build completions the way the champion server would."""
    windows = [np.full((30, 7), lv, dtype=float) for lv in levels]
    labels = model.predict(np.stack(windows))
    return [_Completion(w, int(lb)) for w, lb in zip(windows, labels)]


class TestShadowEvaluator:
    def test_agreement_and_disagreement_matrix(self):
        champion = _SignModel()
        shadow = ShadowEvaluator(_SignModel(flip=True))
        shadow.on_batch(_batch([1.0, -1.0, 2.0, 3.0], champion))
        assert shadow.n_windows == 4
        assert shadow.agreement == 0.0
        agree_shadow = ShadowEvaluator(_SignModel())
        agree_shadow.on_batch(_batch([1.0, -1.0], champion))
        assert agree_shadow.agreement == 1.0
        top = shadow.disagreements_by_class(1)
        assert top[0][0] in {(1, 0), (0, 1)}
        dists = shadow.label_distributions()
        assert sum(dists["champion"].values()) == 4

    def test_empty_and_metrics(self):
        metrics = MetricsRegistry()
        shadow = ShadowEvaluator(_SignModel(), metrics=metrics)
        assert np.isnan(shadow.agreement)
        shadow.on_batch([])
        shadow.on_batch(_batch([1.0, -2.0], _SignModel()))
        snap = metrics.as_dict()
        assert snap["monitor.shadow.windows"] == 2
        assert snap["monitor.shadow.agreement"] == 1.0
        assert snap["monitor.shadow.predict_wall_s"]["count"] == 1

    def test_report_and_validation(self):
        with pytest.raises(TypeError, match="predict"):
            ShadowEvaluator(object())
        shadow = ShadowEvaluator(_SignModel(flip=True))
        shadow.on_batch(_batch([1.0], _SignModel()))
        report = shadow.report()
        assert report["windows"] == 1
        assert report["top_disagreements"][0]["count"] == 1


class TestCanaryController:
    def test_hash_routing_deterministic_and_proportional(self):
        controller = CanaryController(RolloutConfig(canary_fraction=0.25))
        cohort = [s for s in range(4000) if controller.in_canary_cohort(s)]
        assert cohort == [s for s in range(4000)
                          if controller.in_canary_cohort(s)]
        assert 0.2 < len(cohort) / 4000 < 0.3
        salted = CanaryController(
            RolloutConfig(canary_fraction=0.25, salt="other"))
        assert [s for s in range(4000) if salted.in_canary_cohort(s)] != cohort

    def test_shadow_to_canary_to_promoted(self):
        controller = CanaryController(RolloutConfig(
            canary_fraction=0.5, min_shadow_windows=10,
            min_canary_windows=5, min_agreement=0.85,
            rollback_agreement=0.6))
        assert controller.state == SHADOW
        assert controller.update(shadow_windows=5, shadow_agreement=0.99) is None
        decision = controller.update(shadow_windows=12, shadow_agreement=0.95)
        assert decision.to_state == CANARY
        assert controller.route(5) in ("champion", "challenger")
        assert controller.update(
            shadow_windows=20, shadow_agreement=0.95, canary_windows=3) is None
        decision = controller.update(
            shadow_windows=30, shadow_agreement=0.95, canary_windows=6,
            latency_ratio=1.2, now_s=42.0)
        assert decision.to_state == PROMOTED and decision.at_s == 42.0
        assert controller.terminal
        assert controller.route("anything") == "challenger"
        assert controller.update(shadow_windows=99, shadow_agreement=0.0) is None

    def test_rollback_paths(self):
        low = CanaryController(RolloutConfig(min_shadow_windows=10))
        assert low.update(
            shadow_windows=15, shadow_agreement=0.3).to_state == ROLLED_BACK
        slow = CanaryController(RolloutConfig(
            min_shadow_windows=5, min_canary_windows=5,
            max_latency_ratio=2.0))
        slow.update(shadow_windows=10, shadow_agreement=0.99)
        decision = slow.update(shadow_windows=12, shadow_agreement=0.99,
                               canary_windows=10, latency_ratio=3.5)
        assert decision.to_state == ROLLED_BACK
        assert "latency" in decision.reason

    def test_registry_pointer_flipped(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.register("m", _SignModel())          # v1 champion
        registry.register("m", _SignModel())          # v2 challenger
        registry.set_active("m", 1)
        controller = CanaryController(
            RolloutConfig(min_shadow_windows=5, min_canary_windows=1),
            registry=registry, name="m",
            champion_version=1, challenger_version=2)
        controller.update(shadow_windows=10, shadow_agreement=0.99)
        controller.update(shadow_windows=10, shadow_agreement=0.99,
                          canary_windows=2)
        assert controller.state == PROMOTED
        assert registry.active_version("m") == 2

    def test_partial_registry_binding_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="together"):
            CanaryController(registry=ModelRegistry(tmp_path), name="m")

    def test_config_validation(self):
        with pytest.raises(ValueError, match="canary_fraction"):
            RolloutConfig(canary_fraction=0.0)
        with pytest.raises(ValueError, match="rollback_agreement"):
            RolloutConfig(min_agreement=0.5, rollback_agreement=0.7)

    def test_state_gauge_published(self):
        metrics = MetricsRegistry()
        controller = CanaryController(
            RolloutConfig(min_shadow_windows=1), metrics=metrics)
        assert metrics.gauge("monitor.rollout.state").value == 0
        controller.update(shadow_windows=5, shadow_agreement=0.1)
        assert metrics.gauge("monitor.rollout.state").value == -1


class TestAlerts:
    def test_firing_and_resolved_lifecycle(self):
        metrics = MetricsRegistry()
        manager = AlertManager(
            rules=[AlertRule("depth", "queue.depth", ">", 10, for_ticks=2)],
            metrics=metrics)
        gauge = metrics.gauge("queue.depth")
        gauge.set(50)
        assert manager.evaluate(now_s=1.0) == []      # streak 1 < for_ticks
        events = manager.evaluate(now_s=2.0)
        assert [(e.kind, e.at_s) for e in events] == [("firing", 2.0)]
        assert manager.evaluate(now_s=3.0) == []      # stays active silently
        assert manager.active() == {"depth": 2.0}
        gauge.set(0)
        events = manager.evaluate(now_s=4.0)
        assert [(e.kind, e.value) for e in events] == [("resolved", 0.0)]
        assert manager.active() == {}
        assert [e.kind for e in manager.timeline] == ["firing", "resolved"]

    def test_streak_resets_on_recovery(self):
        metrics = MetricsRegistry()
        manager = AlertManager(
            rules=[AlertRule("r", "g", ">", 1, for_ticks=2)], metrics=metrics)
        g = metrics.gauge("g")
        for value in (5, 0, 5, 0, 5):                 # never 2 in a row
            g.set(value)
            assert manager.evaluate() == []

    def test_histogram_summary_paths(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("latency.window_s")
        manager = AlertManager(
            rules=[AlertRule("p95", "latency.window_s.p95", ">", 1.0)],
            metrics=metrics)
        assert manager.evaluate() == []               # no observations yet
        for v in (0.1,) * 18 + (9.0, 9.0):
            hist.observe(v)
        assert [e.kind for e in manager.evaluate()] == ["firing"]

    def test_missing_metric_not_breached(self):
        manager = AlertManager(
            rules=[AlertRule("ghost", "does.not.exist", ">", 0)],
            metrics=MetricsRegistry())
        assert manager.evaluate() == []

    def test_validation(self):
        with pytest.raises(ValueError, match="op"):
            AlertRule("r", "m", "!!", 0)
        with pytest.raises(ValueError, match="for_ticks"):
            AlertRule("r", "m", ">", 0, for_ticks=0)
        with pytest.raises(ValueError, match="duplicate"):
            AlertManager(rules=[AlertRule("r", "m", ">", 0),
                                AlertRule("r", "m2", ">", 0)],
                         metrics=MetricsRegistry())


class TestMonitorBenchEndToEnd:
    """Injected-model runs of the full pipeline (no simulator training)."""

    def _run(self, flip):
        from repro.monitor.bench import run_monitor_bench

        streams = [_stationary(1400, seed=s) for s in range(8)]
        config = MonitorBenchConfig(
            n_jobs=8, samples_per_tick=90, max_samples_per_job=1400,
            drift_start=700, drift_ramp=90, drift_gain=1.7,
            drift_sensors=(0, 6), detector_warmup=0,
            canary_fraction=0.5, min_shadow_windows=20,
            min_canary_windows=6, min_agreement=0.8,
            rollback_agreement=0.55,
        )
        return run_monitor_bench(
            config, champion=_SignModel(), challenger=_SignModel(flip=flip),
            window=270, series=streams, labels=[1] * len(streams))

    def test_good_challenger_promoted(self):
        report = self._run(flip=False)
        assert report.state == PROMOTED
        assert report.active_version == report.challenger_version
        assert report.shadow["agreement"] == 1.0
        assert report.drifted_sessions >= 6
        assert report.detection_latency_samples["median"] <= 540
        assert "promoted" in report.format()

    def test_bad_challenger_rolled_back(self):
        report = self._run(flip=True)
        assert report.state == ROLLED_BACK
        assert report.active_version == report.champion_version
        assert any(a.rule == "shadow-agreement-low" for a in report.alerts)

    def test_series_required_with_injected_models(self):
        from repro.monitor.bench import run_monitor_bench

        with pytest.raises(ValueError, match="series"):
            run_monitor_bench(MonitorBenchConfig(),
                              champion=_SignModel(),
                              challenger=_SignModel())

    def test_config_validation(self):
        with pytest.raises(ValueError, match="challenger"):
            MonitorBenchConfig(challenger="mediocre")
