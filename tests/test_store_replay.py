"""Tests for deterministic replay from the telemetry store: emission-trace
bit-identity across shard counts and rate multipliers, zero-copy loadgen
streams, drift injection on archived telemetry, and the simulate→store
archive path."""

import numpy as np
import pytest

from repro.monitor.inject import DriftInjection
from repro.serve.loadgen import FleetLoadGenerator
from repro.serve.server import ServeConfig
from repro.simcluster.workload import DEFAULT_DT_S
from repro.store import ReplayConfig, Replayer, TelemetryStore


class _MeanSignModel:
    """Deterministic near-free model: label 1 where the grand mean > 0."""

    def predict(self, X):
        X = np.asarray(X)
        return (X.mean(axis=(1, 2)) > 0).astype(np.int64)


def _filled_store(root, n_shards=2, n_jobs=6, n=700):
    store = TelemetryStore(root, n_shards=n_shards)
    for job_id in range(n_jobs):
        rng = np.random.default_rng(100 + job_id)
        series = rng.normal((-1.0) ** job_id, 0.3,
                            size=(n, 7)).astype(np.float32)
        store.append(job_id, series, label=job_id % 2,
                     model_name=f"m{job_id % 2}")
    store.flush()
    return store


_REPLAY = ReplayConfig(n_jobs=6, samples_per_tick=90, min_samples=540, seed=3)
_SERVE = ServeConfig(window=540, hop=90, vote_window=3)


def _trace(store, rate=1.0, drift=None):
    replayer = Replayer(store, ReplayConfig(
        n_jobs=_REPLAY.n_jobs, samples_per_tick=_REPLAY.samples_per_tick,
        min_samples=_REPLAY.min_samples, seed=_REPLAY.seed, rate=rate,
    ))
    report = replayer.run(_MeanSignModel(), serve_config=_SERVE, drift=drift)
    return [
        (e.job_id, int(e.prediction.label), int(e.prediction.smoothed_label))
        for e in report.emissions
    ]


class TestReplayDeterminism:
    def test_identical_across_shard_counts_and_rates(self, tmp_path):
        traces = []
        for n_shards in (1, 3):
            store = _filled_store(tmp_path / f"s{n_shards}", n_shards=n_shards)
            for rate in (1.0, 4.0):
                traces.append(_trace(store, rate=rate))
            store.close()
        assert len(traces[0]) > 0
        for other in traces[1:]:
            assert other == traces[0]

    def test_identical_after_reopen(self, tmp_path):
        store = _filled_store(tmp_path / "s")
        fresh = _trace(store)
        store.close()
        with TelemetryStore(tmp_path / "s") as reopened:
            assert _trace(reopened) == fresh

    def test_rate_rescales_simulated_time_only(self, tmp_path):
        with _filled_store(tmp_path / "s") as store:
            replayer = Replayer(store, ReplayConfig(
                n_jobs=6, min_samples=540, samples_per_tick=90, rate=4.0))
            gen = replayer.loadgen()
            assert gen.tick_s == pytest.approx(90 * DEFAULT_DT_S / 4.0)
            report = replayer.run(_MeanSignModel(), serve_config=_SERVE)
            base = Replayer(store, ReplayConfig(
                n_jobs=6, min_samples=540, samples_per_tick=90, rate=1.0,
            )).run(_MeanSignModel(), serve_config=_SERVE)
            assert report.n_predictions == base.n_predictions
            assert report.sim_seconds == pytest.approx(base.sim_seconds / 4.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            ReplayConfig(rate=0.0)


class TestFromStoreLoadgen:
    def test_streams_are_zero_copy_float32(self, tmp_path):
        with _filled_store(tmp_path / "s") as store:
            gen = FleetLoadGenerator.from_store(store, n_jobs=6,
                                                min_samples=540, seed=0)
            assert gen.n_jobs == 6
            shared = 0
            for series in gen.series:
                assert series.dtype == np.float32
                shared += any(
                    np.shares_memory(series, store.series(job_id))
                    for job_id in range(6)
                )
            # keep_dtype=True means the archived mmap rows are streamed
            # directly — no per-job copy was taken.
            assert shared == len(gen.series)

    def test_short_trials_filtered(self, tmp_path):
        with TelemetryStore(tmp_path / "s") as store:
            store.append(0, np.zeros((700, 7), dtype=np.float32))
            store.append(1, np.zeros((100, 7), dtype=np.float32))
            store.flush()
            gen = FleetLoadGenerator.from_store(store, n_jobs=8,
                                                min_samples=540)
            # The short trial is dropped from the donor stream pool.
            assert len(gen.series) == 1

    def test_empty_store_rejected(self, tmp_path):
        with TelemetryStore(tmp_path / "s") as store:
            with pytest.raises(ValueError):
                FleetLoadGenerator.from_store(store)


class TestReplayWithDrift:
    def test_drift_perturbs_archived_streams(self, tmp_path):
        with _filled_store(tmp_path / "s") as store:
            # A large positive offset flips every negative-mean stream.
            drift = DriftInjection(start_sample=0, ramp_samples=1,
                                   offset=50.0, clip=False)
            clean = _trace(store)
            drifted = _trace(store, drift=drift)
            assert len(drifted) == len(clean)
            assert drifted != clean
            # The archive itself is untouched by the injection.
            assert _trace(store) == clean


class TestSimulateIntoStore:
    def test_generate_archives_bit_identical_series(self, tmp_path,
                                                    tiny_sim_config):
        from repro.simcluster.cluster import ClusterSimulator

        with TelemetryStore(tmp_path / "s", n_shards=4) as store:
            jobs, _ = ClusterSimulator(tiny_sim_config).generate(store=store)
            for job in jobs:
                for gs in job.gpu_series:
                    got = store.series(job.record.job_id, gs.gpu_index)
                    np.testing.assert_array_equal(
                        got, np.asarray(gs.data, dtype=np.float32)
                    )
            # Already sealed: the ingest flushed before generate returned.
            assert store.stats()["wal_resident_trials"] == 0
