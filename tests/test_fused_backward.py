"""Fused backward kernels: bitwise parity with the slow references.

Every layer with a fused backward (``Linear``, ``Conv1d``, ``MaxPool1d``,
``LSTM``, ``BiLSTM``) keeps its pre-fusion autograd path behind
``fused_backward = False``.  These tests pin the contract the perf gates
rely on: same inputs and cotangents ⇒ *bit-identical* gradients, for
hand-picked shapes and hypothesis-drawn ones; the persistent gradient
buffer never aliases caller arrays; and the Adam fast path reproduces the
legacy allocating update exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.layers.conv import Conv1d, MaxPool1d
from repro.nn.layers.linear import Linear
from repro.nn.layers.rnn import BiLSTM, LSTM
from repro.nn.optim.adam import Adam
from repro.nn.tensor import Tensor


def _twin_grads(make_layer, x_shape, seed):
    """Gradients of the same layer/input under fused and slow backward."""
    rng = np.random.default_rng(seed)
    x_data = rng.standard_normal(x_shape).astype(np.float32)
    out_grads = {}
    for fused in (True, False):
        layer = make_layer()
        layer.fused_backward = fused
        x = Tensor(x_data.copy(), requires_grad=True)
        out = layer(x)
        cot = np.random.default_rng(seed + 1) \
            .standard_normal(out.shape).astype(np.float32)
        out.backward(cot)
        out_grads[fused] = {
            **{name: p.grad.copy() for name, p in layer.named_parameters()},
            "__x__": x.grad.copy(),
        }
    return out_grads


def _assert_twin_parity(make_layer, x_shape, seed=0):
    grads = _twin_grads(make_layer, x_shape, seed)
    for name in grads[True]:
        assert np.array_equal(grads[True][name], grads[False][name]), (
            f"fused vs slow gradient of {name} differs for {x_shape}")


CASES = [
    ("linear.2d", lambda: Linear(13, 7, rng=0), (8, 13)),
    ("linear.3d", lambda: Linear(5, 9, rng=0), (4, 6, 5)),
    ("linear.nobias", lambda: Linear(13, 7, bias=False, rng=0), (8, 13)),
    ("conv1d.k5", lambda: Conv1d(7, 11, 5, rng=0), (4, 30, 7)),
    ("conv1d.same", lambda: Conv1d(7, 11, 5, padding="same", rng=0), (4, 30, 7)),
    ("conv1d.stride2", lambda: Conv1d(3, 4, 3, stride=2, rng=0), (2, 19, 3)),
    ("maxpool.k2", lambda: MaxPool1d(2), (4, 30, 7)),
    ("maxpool.k3s2", lambda: MaxPool1d(3, stride=2), (4, 30, 7)),
    ("lstm", lambda: LSTM(7, 12, rng=0), (5, 17, 7)),
    ("bilstm", lambda: BiLSTM(7, 12, rng=0), (5, 17, 7)),
]


class TestFusedGradientParity:
    @pytest.mark.parametrize("name,make_layer,x_shape",
                             CASES, ids=[c[0] for c in CASES])
    def test_bitwise_parity(self, name, make_layer, x_shape):
        _assert_twin_parity(make_layer, x_shape)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 9), st.integers(1, 12),
           st.integers(1, 12))
    def test_linear_random_shapes(self, seed, batch, d_in, d_out):
        _assert_twin_parity(
            lambda: Linear(d_in, d_out, rng=seed), (batch, d_in), seed)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(5, 20),
           st.integers(1, 5), st.integers(1, 6), st.integers(1, 5),
           st.integers(1, 2))
    def test_conv1d_random_shapes(self, seed, batch, t, c_in, c_out, k, stride):
        _assert_twin_parity(
            lambda: Conv1d(c_in, c_out, min(k, t), stride=stride, rng=seed),
            (batch, t, c_in), seed)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(2, 12),
           st.integers(1, 5), st.integers(1, 8),
           st.sampled_from([LSTM, BiLSTM]))
    def test_lstm_random_shapes(self, seed, batch, t, d_in, hidden, cls):
        _assert_twin_parity(
            lambda: cls(d_in, hidden, rng=seed), (batch, t, d_in), seed)


class TestGradientBuffer:
    """The persistent ``_grad_buf`` contract fused kernels rely on."""

    def test_first_contribution_is_copied(self):
        # Fused layers pass scratch they overwrite next batch; _accum must
        # never retain the caller's array by reference.
        p = Tensor(np.zeros(4, np.float32), requires_grad=True)
        scratch = np.arange(4, dtype=np.float32)
        p._accum(scratch)
        scratch[:] = -1.0
        np.testing.assert_array_equal(p.grad, [0.0, 1.0, 2.0, 3.0])
        assert p.grad is not scratch

    def test_zero_grad_keeps_buffer(self):
        p = Tensor(np.zeros(4, np.float32), requires_grad=True)
        p._accum(np.ones(4, np.float32))
        buf = p.grad
        p.zero_grad()
        assert p.grad is None
        p._accum(np.full(4, 2.0, np.float32))
        assert p.grad is buf  # refilled in place, no fresh allocation
        np.testing.assert_array_equal(p.grad, np.full(4, 2.0))

    def test_second_contribution_adds_in_place(self):
        p = Tensor(np.zeros(3, np.float32), requires_grad=True)
        p._accum(np.ones(3, np.float32))
        buf = p.grad
        p._accum(np.full(3, 2.0, np.float32))
        assert p.grad is buf
        np.testing.assert_array_equal(p.grad, np.full(3, 3.0))

    def test_externally_assigned_grad_not_mutated(self):
        p = Tensor(np.zeros(3, np.float32), requires_grad=True)
        external = np.ones(3, np.float32)
        p.grad = external
        p._accum(np.ones(3, np.float32))
        np.testing.assert_array_equal(external, np.ones(3))  # untouched
        np.testing.assert_array_equal(p.grad, np.full(3, 2.0))

    def test_module_zero_grad_in_place(self):
        layer = Linear(5, 3, rng=0)
        x = Tensor(np.ones((2, 5), np.float32), requires_grad=True)
        layer(x).backward(np.ones((2, 3), np.float32))
        bufs = {n: p.grad for n, p in layer.named_parameters()}
        layer.zero_grad()
        assert all(p.grad is None for _, p in layer.named_parameters())
        layer(x).backward(np.ones((2, 3), np.float32))
        for n, p in layer.named_parameters():
            assert p.grad is bufs[n]


class TestAdamFastPath:
    def _steps(self, force_legacy, n_steps=5, seed=0):
        rng = np.random.default_rng(seed)
        params = [Tensor(rng.standard_normal(s).astype(np.float32),
                         requires_grad=True)
                  for s in [(4, 3), (3,), (2, 2, 2)]]
        opt = Adam(params, lr=1e-3, weight_decay=1e-4)
        if force_legacy:
            # A non-``float`` eps disables the in-place fast path while
            # keeping the arithmetic float32 (np.float32 adds to a float32
            # array exactly like the cast python float does).
            opt.eps = np.float32(opt.eps)
        grad_rng = np.random.default_rng(seed + 1)
        for _ in range(n_steps):
            for p in params:
                p.zero_grad()
                p._accum(grad_rng.standard_normal(p.data.shape)
                         .astype(np.float32))
            opt.step()
        return [p.data.copy() for p in params]

    def test_fast_matches_legacy_bitwise(self):
        fast = self._steps(force_legacy=False)
        legacy = self._steps(force_legacy=True)
        for a, b in zip(fast, legacy):
            assert np.array_equal(a, b)

    def test_fast_path_does_not_allocate_per_step(self):
        p = Tensor(np.ones((8, 8), np.float32), requires_grad=True)
        opt = Adam([p], lr=1e-3)
        p._accum(np.ones((8, 8), np.float32))
        opt.step()
        scratch = opt._scratch
        assert scratch is not None
        opt.step()
        assert opt._scratch is scratch  # reused, not reallocated


class TestWholeModelParity:
    def test_two_epoch_trajectory(self):
        # The composition gate: all-fused vs all-slow training must walk
        # the same trajectory bit for bit.  (Mirrors the perf-suite gate
        # so a fused regression fails the unit tests too.)
        from repro.perf.train_bench import _whole_model_parity

        _whole_model_parity(seed=0)
