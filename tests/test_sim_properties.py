"""Property sweeps over the whole telemetry generator, plus targeted tests
for the thermal-throttling path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simcluster.architectures import ARCHITECTURES, get_architecture
from repro.simcluster.gpu import GpuModel, V100_SPEC
from repro.simcluster.sensors import GPU_SENSORS, gpu_sensor_index
from repro.simcluster.signatures import signature_for
from repro.simcluster.workload import WorkloadGenerator


class TestGeneratorProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.sampled_from([a.name for a in ARCHITECTURES]),
        st.floats(min_value=150.0, max_value=500.0),
    )
    def test_any_job_physically_valid(self, seed, name, duration):
        """Every class, seed and duration yields in-range, finite data."""
        gen = WorkloadGenerator(startup_mean_s=28.0)
        telemetry = gen.generate_job(
            get_architecture(name), duration, np.random.default_rng(seed)
        )
        data = telemetry.gpu_series[0].data
        assert np.all(np.isfinite(data))
        for j, spec in enumerate(GPU_SENSORS):
            assert data[:, j].min() >= spec.lo - 1e-9, (name, spec.name)
            assert data[:, j].max() <= spec.hi + 1e-9, (name, spec.name)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000),
           st.sampled_from([a.name for a in ARCHITECTURES]))
    def test_determinism_across_instances(self, seed, name):
        spec = get_architecture(name)
        a = WorkloadGenerator(startup_mean_s=28.0).generate_job(
            spec, 200.0, np.random.default_rng(seed))
        b = WorkloadGenerator(startup_mean_s=28.0).generate_job(
            spec, 200.0, np.random.default_rng(seed))
        np.testing.assert_array_equal(a.gpu_series[0].data,
                                      b.gpu_series[0].data)

    def test_glitch_rate_zero_is_clean(self):
        """glitch_rate=0 produces no dropped-sample zeros mid-training."""
        gen = WorkloadGenerator(startup_mean_s=28.0, glitch_rate=0.0)
        telemetry = gen.generate_job(
            get_architecture("Bert"), 300.0, np.random.default_rng(0))
        power = telemetry.gpu_series[0].data[:, gpu_sensor_index("power_draw_W")]
        # Power never reads exactly zero without glitches (idle floor is 42W).
        assert power.min() >= V100_SPEC.idle_power_w - 1e-9

    def test_glitches_zero_instantaneous_counters(self):
        gen = WorkloadGenerator(startup_mean_s=28.0, glitch_rate=0.2)
        rng = np.random.default_rng(1)
        data = gen.gpu_model.assemble(
            np.full(2000, 80.0), np.full(2000, 50.0), np.full(2000, 10_000.0),
            signature_for(get_architecture("VGG16")), 0.111, rng,
        )
        gen.apply_glitches(data, rng)
        dropped = data[:, 6] == 0.0
        assert dropped.any()
        # Memory footprint persists through glitches (collector caches it).
        assert np.all(data[dropped, 3] > 0.0)

    def test_invalid_glitch_rate(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(glitch_rate=0.6)


class TestThermalThrottle:
    def _assemble(self, util_level, seed=0):
        sig = signature_for(get_architecture("Bert"))
        rng = np.random.default_rng(seed)
        n = 4000
        return GpuModel().assemble(
            np.full(n, util_level), np.full(n, 60.0), np.full(n, 20_000.0),
            sig, 0.111, rng,
        )

    def test_sustained_load_can_throttle(self):
        """Find a seed whose thermal environment pushes a flat-out workload
        over the slowdown temperature; its power must then drop below the
        unthrottled trend."""
        throttled_seen = False
        for seed in range(20):
            data = self._assemble(100.0, seed=seed)
            temp = data[:, gpu_sensor_index("temperature_gpu")]
            if temp.max() > V100_SPEC.throttle_c:
                throttled_seen = True
                hot = temp > V100_SPEC.throttle_c
                power = data[:, gpu_sensor_index("power_draw_W")]
                # Hot samples draw noticeably less than the hottest
                # non-throttled samples would (power was cut 18%).
                assert power[hot].mean() < power[~hot].max()
        assert throttled_seen, "no seed reached the throttle point"

    def test_light_load_never_throttles(self):
        data = self._assemble(15.0, seed=3)
        temp = data[:, gpu_sensor_index("temperature_gpu")]
        assert temp.max() < V100_SPEC.throttle_c

    def test_throttle_temperature_in_spec(self):
        assert 70.0 < V100_SPEC.throttle_c < 90.0
