"""Tests for functional ops, losses, optimizers, schedulers and the
trainer."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    ConstantLR,
    CrossEntropyLoss,
    CyclicCosineLR,
    Linear,
    Module,
    NLLLoss,
    SGD,
    Sequential,
    StepLR,
    Tanh,
    Tensor,
    Trainer,
    cross_entropy,
    log_softmax,
    nll_loss,
    softmax,
)
from tests.test_nn_tensor import numerical_grad


class TestLogSoftmax:
    def test_rows_are_log_distributions(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        out = log_softmax(x, axis=-1)
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0, atol=1e-6)

    def test_stability(self):
        x = Tensor(np.array([[1000.0, 0.0], [-1000.0, 0.0]]))
        out = log_softmax(x)
        assert np.all(np.isfinite(out.data))

    def test_gradcheck(self):
        rng = np.random.default_rng(1)
        x_data = rng.normal(size=(3, 4))
        x = Tensor(x_data, requires_grad=True, dtype=np.float64)
        (log_softmax(x) ** 2).sum().backward()

        def f():
            return float(
                (log_softmax(Tensor(x_data, dtype=np.float64)).data ** 2).sum()
            )

        np.testing.assert_allclose(x.grad, numerical_grad(f, x_data), atol=1e-4)

    def test_softmax_matches_exp(self):
        x = Tensor(np.random.default_rng(2).normal(size=(3, 3)))
        np.testing.assert_allclose(
            softmax(x).data, np.exp(log_softmax(x).data), atol=1e-6
        )


class TestLosses:
    def test_nll_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[50.0, 0.0], [0.0, 50.0]]))
        loss = nll_loss(log_softmax(logits), np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_nll_uniform_is_log_k(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = nll_loss(log_softmax(logits), np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10), rel=1e-5)

    def test_cross_entropy_equals_composition(self):
        rng = np.random.default_rng(3)
        logits_data = rng.normal(size=(6, 5)).astype(np.float32)
        y = rng.integers(0, 5, 6)
        a = cross_entropy(Tensor(logits_data), y).item()
        b = nll_loss(log_softmax(Tensor(logits_data)), y).item()
        assert a == pytest.approx(b, rel=1e-6)

    def test_target_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            nll_loss(log_softmax(Tensor(np.zeros((2, 3)))), np.array([0, 5]))

    def test_loss_modules(self):
        logits = Tensor(np.zeros((2, 3)))
        y = np.array([0, 1])
        assert NLLLoss()(log_softmax(logits), y).item() == pytest.approx(
            CrossEntropyLoss()(logits, y).item())


class _Quadratic(Module):
    """Minimize ||w - target||^2 — a convex test problem."""

    def __init__(self, dim=5):
        super().__init__()
        from repro.nn.module import Parameter

        self.w = Parameter(np.zeros(dim, dtype=np.float64))
        self.target = np.arange(dim, dtype=np.float64)

    def loss(self):
        diff = self.w - Tensor(self.target, dtype=np.float64)
        return (diff * diff).sum()


class TestOptimizers:
    def test_sgd_converges(self):
        m = _Quadratic()
        opt = SGD(m.parameters(), lr=0.1)
        for _ in range(200):
            loss = m.loss()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(m.w.data, m.target, atol=1e-3)

    def test_sgd_momentum_faster(self):
        def run(momentum):
            m = _Quadratic()
            opt = SGD(m.parameters(), lr=0.02, momentum=momentum)
            for _ in range(50):
                loss = m.loss()
                opt.zero_grad()
                loss.backward()
                opt.step()
            return m.loss().item()

        assert run(0.9) < run(0.0)

    def test_adam_converges(self):
        m = _Quadratic()
        opt = Adam(m.parameters(), lr=0.1)
        for _ in range(300):
            loss = m.loss()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(m.w.data, m.target, atol=1e-2)

    def test_weight_decay_shrinks(self):
        m = _Quadratic()
        m.w.data[:] = 10.0
        opt = SGD(m.parameters(), lr=0.01, weight_decay=1.0)
        # No loss gradient: only decay acts.
        m.w.grad = np.zeros_like(m.w.data)
        opt.step()
        assert np.all(np.abs(m.w.data) < 10.0)

    def test_grad_clipping(self):
        m = _Quadratic()
        opt = SGD(m.parameters(), lr=0.1)
        m.w.grad = np.full(5, 100.0)
        norm = opt.clip_grad_norm(1.0)
        assert norm > 100
        assert np.linalg.norm(m.w.grad) == pytest.approx(1.0, rel=1e-5)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        m = _Quadratic()
        with pytest.raises(ValueError):
            SGD(m.parameters(), lr=0.0)

    def test_invalid_betas(self):
        m = _Quadratic()
        with pytest.raises(ValueError):
            Adam(m.parameters(), lr=0.1, betas=(1.0, 0.9))


class TestSchedulers:
    def _opt(self, lr=1.0):
        return SGD(_Quadratic().parameters(), lr=lr)

    def test_constant(self):
        opt = self._opt()
        sched = ConstantLR(opt)
        for _ in range(5):
            assert sched.step() == 1.0

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        assert lrs[0] == 1.0 and lrs[1] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.01)

    def test_cyclic_cosine_decays_within_cycle(self):
        opt = self._opt()
        sched = CyclicCosineLR(opt, cycle_len=10, min_lr=0.01)
        lrs = [sched.step() for _ in range(10)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))
        assert lrs[-1] == pytest.approx(0.01, abs=0.06)

    def test_cyclic_cosine_warm_restart(self):
        opt = self._opt()
        sched = CyclicCosineLR(opt, cycle_len=5, min_lr=0.01)
        lrs = [sched.step() for _ in range(6)]
        # After the restart, LR jumps back near base.
        assert lrs[5] > lrs[4]
        assert lrs[5] == pytest.approx(1.0, abs=0.1)

    def test_cycle_mult_stretches(self):
        opt = self._opt()
        sched = CyclicCosineLR(opt, cycle_len=4, min_lr=0.01, cycle_mult=2.0)
        lrs = [sched.step() for _ in range(12)]
        # Second cycle is 8 steps: restart happens at step index 4.
        assert lrs[4] > lrs[3]
        restart2 = 4 + 8
        assert all(lrs[i] >= lrs[i + 1] - 1e-12 for i in range(4, restart2 - 1))

    def test_validation(self):
        opt = self._opt()
        with pytest.raises(ValueError):
            CyclicCosineLR(opt, cycle_len=0)
        with pytest.raises(ValueError):
            CyclicCosineLR(opt, min_lr=2.0)
        with pytest.raises(ValueError):
            CyclicCosineLR(opt, cycle_mult=0.5)


def _toy_sequence_data(n=80, t=12, d=3, seed=0):
    """Two classes distinguished by the mean level of channel 0."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    X = rng.normal(0, 0.3, size=(n, t, d)).astype(np.float32)
    X[:, :, 0] += y[:, None] * 2.0
    return X, y


class _MeanPoolClassifier(Module):
    def __init__(self, d=3, k=2):
        super().__init__()
        self.fc = Linear(d, k, rng=0)

    def forward(self, x):
        return log_softmax(self.fc(x.mean(axis=1)), axis=-1)


class TestTrainer:
    def test_trains_toy_problem(self):
        X, y = _toy_sequence_data()
        model = _MeanPoolClassifier()
        opt = Adam(model.parameters(), lr=0.05)
        trainer = Trainer(model, opt, NLLLoss(), batch_size=16, max_epochs=30,
                          patience=30)
        hist = trainer.fit(X[:60], y[:60], X[60:], y[60:])
        assert hist.best_val_accuracy > 0.9

    def test_early_stopping_triggers(self):
        X, y = _toy_sequence_data(seed=1)
        model = _MeanPoolClassifier()
        opt = Adam(model.parameters(), lr=0.05)
        trainer = Trainer(model, opt, NLLLoss(), batch_size=16,
                          max_epochs=500, patience=3)
        hist = trainer.fit(X[:60], y[:60], X[60:], y[60:])
        assert len(hist.epochs) < 500

    def test_best_weights_restored(self):
        X, y = _toy_sequence_data(seed=2)
        model = _MeanPoolClassifier()
        opt = Adam(model.parameters(), lr=0.05)
        trainer = Trainer(model, opt, NLLLoss(), batch_size=16, max_epochs=10,
                          patience=10)
        hist = trainer.fit(X[:60], y[:60], X[60:], y[60:])
        final_acc = trainer.evaluate_accuracy(X[60:], y[60:])
        assert final_acc == pytest.approx(hist.best_val_accuracy)

    def test_history_records_lr(self):
        X, y = _toy_sequence_data(seed=3)
        model = _MeanPoolClassifier()
        opt = Adam(model.parameters(), lr=0.05)
        sched = CyclicCosineLR(opt, cycle_len=4, min_lr=1e-4)
        trainer = Trainer(model, opt, NLLLoss(), scheduler=sched,
                          batch_size=16, max_epochs=6, patience=6)
        hist = trainer.fit(X[:60], y[:60], X[60:], y[60:])
        lrs = [e.lr for e in hist.epochs]
        assert lrs[0] == pytest.approx(0.05)
        assert min(lrs) < 0.05

    def test_predict_shapes(self):
        X, y = _toy_sequence_data(seed=4)
        model = _MeanPoolClassifier()
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), NLLLoss(),
                          max_epochs=1, batch_size=16)
        preds = trainer.predict(X)
        assert preds.shape == (len(y),)

    def test_invalid_params(self):
        model = _MeanPoolClassifier()
        opt = Adam(model.parameters(), lr=0.01)
        with pytest.raises(ValueError):
            Trainer(model, opt, NLLLoss(), batch_size=0)
