"""Tests for the CPU model, scheduler log, anonymization and the cluster
simulator driver."""

import numpy as np
import pytest

from repro.simcluster.anonymize import anonymize_id
from repro.simcluster.architectures import ARCHITECTURES, get_architecture
from repro.simcluster.cluster import ClusterSimulator, SimulationConfig
from repro.simcluster.cpu_model import CpuModel
from repro.simcluster.phases import build_phase_schedule
from repro.simcluster.scheduler import JobRecord, SchedulerLog
from repro.simcluster.sensors import CPU_METRICS
from repro.simcluster.signatures import signature_for


class TestAnonymize:
    def test_deterministic(self):
        assert anonymize_id("alice") == anonymize_id("alice")

    def test_distinct_inputs_distinct_hashes(self):
        assert anonymize_id("alice") != anonymize_id("bob")

    def test_salt_changes_hash(self):
        assert anonymize_id("alice", salt="a") != anonymize_id("alice", salt="b")

    def test_length(self):
        assert len(anonymize_id("alice", length=12)) == 12

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            anonymize_id("")

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            anonymize_id("alice", length=2)


class TestCpuModel:
    def _series(self, name="VGG16", seed=0, total=300.0):
        sig = signature_for(get_architecture(name))
        sched = build_phase_schedule(sig, total, np.random.default_rng(seed))
        return CpuModel().generate(sig, sched, np.random.default_rng(seed)), sched

    def test_shape(self):
        series, _ = self._series()
        assert series.data.shape[1] == len(CPU_METRICS)
        assert series.n_samples == 30  # 300 s at 10 s sampling

    def test_sampled_slower_than_gpu(self):
        """The stated challenge difficulty: CPU and GPU series have
        different lengths for the same trial."""
        series, sched = self._series()
        gpu_samples = int(round(sched.total_s / (60.0 / 540.0)))
        assert series.n_samples < gpu_samples / 10

    def test_cumulative_counters_monotone(self):
        series, _ = self._series()
        for col, name in [(1, "CPUTime"), (6, "ReadMB"), (7, "WriteMB")]:
            values = series.data[:, col]
            assert np.all(np.diff(values) >= -1e-9), name

    def test_utilization_in_range(self):
        series, _ = self._series()
        util = series.data[:, 2]
        assert util.min() >= 0.0 and util.max() <= 100.0

    def test_rss_below_node_ram(self):
        series, _ = self._series("Bert")
        assert series.data[:, 3].max() <= 384 * 1024

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            CpuModel(dt_s=0.0)


class TestJobRecord:
    def test_derived_quantities(self):
        r = JobRecord(1, "abc", "VGG16", 1, n_nodes=2, gpus_per_node=2,
                      submit_time_s=0.0, start_time_s=10.0, end_time_s=110.0)
        assert r.n_gpus == 4
        assert r.duration_s == 100.0
        assert r.queue_wait_s == 10.0

    def test_rejects_end_before_start(self):
        with pytest.raises(ValueError, match="end before start"):
            JobRecord(1, "a", "VGG16", 1, 1, 1, 0.0, 10.0, 5.0)

    def test_rejects_start_before_submit(self):
        with pytest.raises(ValueError, match="before submission"):
            JobRecord(1, "a", "VGG16", 1, 1, 1, 20.0, 10.0, 50.0)

    def test_rejects_zero_resources(self):
        with pytest.raises(ValueError):
            JobRecord(1, "a", "VGG16", 1, 0, 1, 0.0, 1.0, 2.0)


class TestSchedulerLog:
    def test_total_gpu_series_counts_multi_gpu(self):
        log = SchedulerLog()
        rng = np.random.default_rng(0)
        log.append(SchedulerLog.make_record(0, "VGG16", 1, 100.0, rng,
                                            n_nodes=2, gpus_per_node=2))
        log.append(SchedulerLog.make_record(1, "Bert", 20, 100.0, rng))
        assert log.total_gpu_series() == 5
        assert len(log) == 2

    def test_by_class(self):
        log = SchedulerLog()
        rng = np.random.default_rng(0)
        log.append(SchedulerLog.make_record(0, "VGG16", 1, 100.0, rng))
        log.append(SchedulerLog.make_record(1, "Bert", 20, 100.0, rng))
        assert len(log.by_class(20)) == 1

    def test_user_hash_is_anonymized(self):
        rng = np.random.default_rng(0)
        rec = SchedulerLog.make_record(0, "VGG16", 1, 100.0, rng, user="alice")
        assert rec.user_hash == anonymize_id("alice")
        assert "alice" not in rec.user_hash


class TestSimulationConfig:
    def test_defaults_valid(self):
        SimulationConfig()

    def test_jobs_for_class_proportional(self):
        cfg = SimulationConfig(trials_scale=0.1, min_jobs_per_class=1)
        vgg11 = get_architecture("VGG11")
        assert cfg.jobs_for_class(vgg11) == round(185 * 0.1)

    def test_min_jobs_floor(self):
        cfg = SimulationConfig(trials_scale=0.01, min_jobs_per_class=5)
        pna = get_architecture("PNA")  # 27 paper jobs -> 0 scaled
        assert cfg.jobs_for_class(pna) == 5

    def test_full_scale_total_jobs(self):
        """trials_scale=1.0 reproduces the 3,430-job release size."""
        cfg = SimulationConfig(trials_scale=1.0, min_jobs_per_class=1)
        assert cfg.total_jobs() == 3430

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(trials_scale=0.0),
            dict(min_jobs_per_class=0),
            dict(gpus_per_job_probs=(0.5, 0.5, 0.5)),
            dict(duration_clip_s=(500.0, 100.0)),
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)


class TestClusterSimulator:
    def test_plan_covers_all_classes(self, tiny_sim_config):
        sim = ClusterSimulator(tiny_sim_config)
        plan = sim.job_plan()
        assert {spec.name for _, spec in plan} == {a.name for a in ARCHITECTURES}

    def test_generate_one_order_independent(self, tiny_sim_config):
        sim = ClusterSimulator(tiny_sim_config)
        plan = sim.job_plan()
        job_id, spec = plan[5]
        a = sim.generate_one(job_id, spec)
        # Generate a different job in between; stream isolation must hold.
        sim.generate_one(*plan[2])
        b = ClusterSimulator(tiny_sim_config).generate_one(job_id, spec)
        np.testing.assert_array_equal(
            a.gpu_series[0].data, b.gpu_series[0].data
        )

    def test_generate_full_release(self, tiny_sim_config):
        jobs, log = ClusterSimulator(tiny_sim_config).generate()
        assert len(jobs) == len(log)
        assert log.total_gpu_series() >= len(jobs)
        for job in jobs:
            assert len(job.gpu_series) == job.record.n_gpus
            assert job.cpu_series is not None

    def test_durations_respect_clip(self, tiny_sim_config):
        jobs, _ = ClusterSimulator(tiny_sim_config).generate()
        lo, hi = tiny_sim_config.duration_clip_s
        for job in jobs:
            assert lo <= job.record.duration_s <= hi
