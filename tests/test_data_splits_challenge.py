"""Tests for splitting and challenge-suite assembly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.challenge import (
    CHALLENGE_DATASET_NAMES,
    build_challenge_suite,
    load_challenge_suite,
    save_challenge_suite,
)
from repro.data.splits import stratified_split_indices, train_test_split_by_group
from repro.data.stats import (
    architecture_job_counts,
    challenge_suite_table,
    family_totals,
    format_table,
)


class TestStratifiedSplit:
    def test_partition(self):
        labels = np.repeat([0, 1, 2], 20)
        train, test = stratified_split_indices(labels, 0.2, 0)
        assert len(train) + len(test) == 60
        assert len(np.intersect1d(train, test)) == 0

    def test_stratification(self):
        labels = np.repeat([0, 1], [40, 10])
        train, test = stratified_split_indices(labels, 0.2, 0)
        assert np.sum(labels[test] == 0) == 8
        assert np.sum(labels[test] == 1) == 2

    def test_small_class_keeps_one_each_side(self):
        labels = np.array([0] * 20 + [1, 1])
        train, test = stratified_split_indices(labels, 0.2, 0)
        assert np.sum(labels[train] == 1) == 1
        assert np.sum(labels[test] == 1) == 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            stratified_split_indices(np.zeros(10, dtype=int), 1.0, 0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 500))
    def test_property_disjoint_and_complete(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 5, size=50)
        train, test = stratified_split_indices(labels, 0.25, seed)
        combined = np.sort(np.concatenate([train, test]))
        np.testing.assert_array_equal(combined, np.arange(50))


class TestGroupSplit:
    def test_groups_stay_together(self):
        labels = np.array([0, 0, 0, 1, 1, 1, 0, 0, 1, 1] * 4)
        groups = np.array([0, 0, 1, 2, 2, 3, 4, 4, 5, 5] * 4) + \
            np.repeat(np.arange(4) * 6, 10)
        train, test = train_test_split_by_group(labels, groups, 0.25, 0)
        train_groups = set(groups[train].tolist())
        test_groups = set(groups[test].tolist())
        assert not train_groups & test_groups

    def test_mixed_group_rejected(self):
        labels = np.array([0, 1])
        groups = np.array([7, 7])
        with pytest.raises(ValueError, match="mixes labels"):
            train_test_split_by_group(labels, groups, 0.5, 0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            train_test_split_by_group(np.zeros(3, dtype=int), np.zeros(4), 0.5, 0)


class TestChallengeSuite:
    def test_seven_dataset_names(self):
        """Table IV releases seven datasets."""
        assert len(CHALLENGE_DATASET_NAMES) == 7
        assert CHALLENGE_DATASET_NAMES[0] == "60-start-1"
        assert CHALLENGE_DATASET_NAMES[1] == "60-middle-1"
        assert sum(n.startswith("60-random") for n in CHALLENGE_DATASET_NAMES) == 5

    def test_suite_shapes(self, challenge_suite_tiny):
        for name, ds in challenge_suite_tiny.items():
            assert ds.n_samples == 540, name
            assert ds.n_sensors == 7, name
            assert ds.n_train > ds.n_test

    def test_shared_split_across_datasets(self, challenge_suite_tiny):
        """All seven datasets share one train/test partition."""
        ys = [ds.y_train for ds in challenge_suite_tiny.values()]
        for y in ys[1:]:
            np.testing.assert_array_equal(ys[0], y)

    def test_start_windows_begin_at_zero(self, labelled_tiny, challenge_suite_tiny):
        start = challenge_suite_tiny["60-start-1"]
        eligible = labelled_tiny.eligible(540)
        # First training trial's start window equals the first 540 samples
        # of some eligible trial.
        first = start.X_train[0]
        matches = [
            np.allclose(t.series[:540], first, atol=1e-5)
            for t in eligible.trials
        ]
        assert any(matches)

    def test_random_datasets_differ(self, challenge_suite_tiny):
        r1 = challenge_suite_tiny["60-random-1"].X_train
        start = challenge_suite_tiny["60-start-1"].X_train
        assert not np.allclose(r1, start)

    def test_deterministic_rebuild(self, labelled_tiny):
        a = build_challenge_suite(labelled_tiny, seed=3, names=("60-random-1",))
        b = build_challenge_suite(labelled_tiny, seed=3, names=("60-random-1",))
        np.testing.assert_array_equal(
            a["60-random-1"].X_train, b["60-random-1"].X_train
        )

    def test_different_seed_different_windows(self, labelled_tiny):
        a = build_challenge_suite(labelled_tiny, seed=3, names=("60-random-1",))
        b = build_challenge_suite(labelled_tiny, seed=4, names=("60-random-1",))
        assert not np.array_equal(
            a["60-random-1"].X_train, b["60-random-1"].X_train
        )

    def test_no_job_leakage(self, labelled_tiny):
        suite = build_challenge_suite(labelled_tiny, seed=5, names=("60-middle-1",))
        ds = suite["60-middle-1"]
        eligible = labelled_tiny.eligible(540)
        # Recover job ids by matching window contents is awkward; instead
        # rebuild the split and assert group disjointness directly.
        from repro.data.splits import train_test_split_by_group
        from repro.utils.rng import SeedSequenceFactory

        tr, te = train_test_split_by_group(
            eligible.labels(), eligible.job_ids(), 0.2,
            SeedSequenceFactory(5).stream("trial-split"),
        )
        jobs_tr = set(eligible.job_ids()[tr].tolist())
        jobs_te = set(eligible.job_ids()[te].tolist())
        assert not jobs_tr & jobs_te
        assert ds.n_train == len(tr) and ds.n_test == len(te)

    def test_save_load_round_trip(self, challenge_suite_tiny, tmp_path):
        names = tuple(challenge_suite_tiny)
        save_challenge_suite(challenge_suite_tiny, tmp_path)
        loaded = load_challenge_suite(tmp_path, names)
        for name in names:
            np.testing.assert_array_equal(
                loaded[name].X_test, challenge_suite_tiny[name].X_test
            )
            np.testing.assert_array_equal(
                loaded[name].model_train, challenge_suite_tiny[name].model_train
            )

    def test_unknown_dataset_name(self, labelled_tiny):
        with pytest.raises(ValueError, match="unknown challenge dataset"):
            build_challenge_suite(labelled_tiny, names=("60-end-1",))


class TestStats:
    def test_architecture_counts(self, labelled_tiny):
        counts = architecture_job_counts(labelled_tiny)
        assert len(counts) == 26
        total_trials = sum(e["trials"] for e in counts.values())
        assert total_trials == len(labelled_tiny)
        for entry in counts.values():
            assert entry["trials"] >= entry["jobs"]

    def test_family_totals(self, labelled_tiny):
        totals = family_totals(labelled_tiny)
        assert set(totals) == {"VGG", "ResNet", "Inception", "U-Net", "NLP", "GNN"}
        assert sum(totals.values()) == labelled_tiny.n_jobs()

    def test_suite_table(self, challenge_suite_tiny):
        rows = challenge_suite_table(challenge_suite_tiny)
        assert len(rows) == len(challenge_suite_tiny)
        assert all(r["samples"] == 540 for r in rows)

    def test_format_table(self):
        out = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        assert "a" in out and "22" in out
        assert format_table([]) == "(empty)"
