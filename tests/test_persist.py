"""Tests for model persistence."""

import numpy as np
import pytest

from repro.utils.persist import load_model, save_model


class TestPersistence:
    def test_round_trip_fitted_forest(self, blobs_split, tmp_path):
        from repro.ml.ensemble import RandomForestClassifier

        Xtr, ytr, Xte, _ = blobs_split
        model = RandomForestClassifier(n_estimators=10, random_state=0)
        model.fit(Xtr, ytr)
        path = save_model(model, tmp_path / "forest.pkl")
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded.predict(Xte), model.predict(Xte))

    def test_round_trip_pipeline(self, tmp_path):
        from repro.models import make_rf_cov

        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 30, 7)).astype(np.float32)
        y = rng.integers(0, 3, 20)
        X[y == 1, :, 0] += 3.0
        X[y == 2, :, 1] += 3.0
        pipe = make_rf_cov(n_estimators=5).fit(X, y)
        loaded = load_model(save_model(pipe, tmp_path / "pipe.pkl"))
        np.testing.assert_array_equal(loaded.predict(X), pipe.predict(X))

    def test_round_trip_nn_model(self, tmp_path):
        from repro.models import LSTMClassifier

        model = LSTMClassifier(n_sensors=3, seq_len=8, n_classes=2,
                               hidden_size=4, seed=0)
        X = np.random.default_rng(1).normal(size=(5, 8, 3)).astype(np.float32)
        before = model.predict(X)
        loaded = load_model(save_model(model, tmp_path / "lstm.pkl"))
        np.testing.assert_array_equal(loaded.predict(X), before)

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(ValueError, match="not a repro model"):
            load_model(path)

    def test_rejects_plain_pickle(self, tmp_path):
        import pickle

        path = tmp_path / "plain.pkl"
        path.write_bytes(pickle.dumps({"just": "a dict"}))
        with pytest.raises(ValueError, match="not a repro model"):
            load_model(path)

    def test_version_mismatch_warns(self, tmp_path, monkeypatch):
        from repro.ml.preprocessing import StandardScaler

        path = save_model(StandardScaler(), tmp_path / "scaler.pkl")
        import repro

        monkeypatch.setattr(repro, "__version__", "999.0.0")
        with pytest.warns(UserWarning, match="saved with repro"):
            load_model(path)

    def test_creates_parent_dirs(self, tmp_path):
        from repro.ml.preprocessing import StandardScaler

        path = save_model(StandardScaler(), tmp_path / "deep" / "dir" / "m.pkl")
        assert path.exists()

    def test_missing_file_raises_with_resolved_path(self, tmp_path):
        missing = tmp_path / "nope" / "absent.pkl"
        with pytest.raises(FileNotFoundError, match="no model file"):
            load_model(missing)
        with pytest.raises(FileNotFoundError, match="absent.pkl"):
            load_model(missing)
