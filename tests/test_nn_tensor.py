"""Tests for the autograd engine, including finite-difference gradient
checks (property-based over random shapes and seeds)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor, no_grad


def numerical_grad(f, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central finite differences of scalar f wrt array x."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def check_grad(op, *shapes, seed=0, atol=2e-2, nonneg=False):
    """Assert autograd gradient of ``sum(op(xs))`` matches finite diffs."""
    rng = np.random.default_rng(seed)
    arrays = [
        (np.abs(rng.normal(size=s)) + 0.5 if nonneg else rng.normal(size=s))
        .astype(np.float64)
        for s in shapes
    ]
    tensors = [Tensor(a, requires_grad=True, dtype=np.float64) for a in arrays]
    out = op(*tensors)
    loss = out.sum() if out.size > 1 else out
    loss.backward()
    for t, a in zip(tensors, arrays):
        def f(a=a, arrays=arrays):
            ts = [Tensor(arr, dtype=np.float64) for arr in arrays]
            o = op(*ts)
            return float(o.data.sum())
        num = numerical_grad(f, a)
        assert t.grad is not None
        np.testing.assert_allclose(t.grad, num, atol=atol, rtol=1e-3)


class TestBasicOps:
    def test_add(self):
        check_grad(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_grad(lambda a, b: a + b, (3, 4), (4,))

    def test_mul(self):
        check_grad(lambda a, b: a * b, (2, 5), (2, 5))

    def test_mul_broadcast_scalar_shape(self):
        check_grad(lambda a, b: a * b, (4, 3), (1, 3))

    def test_sub_neg(self):
        check_grad(lambda a, b: a - b, (6,), (6,))

    def test_div(self):
        check_grad(lambda a, b: a / b, (3, 3), (3, 3), nonneg=True)

    def test_pow(self):
        check_grad(lambda a: a**3, (5,))

    def test_matmul(self):
        check_grad(lambda a, b: a @ b, (4, 3), (3, 5))

    def test_matmul_batched(self):
        check_grad(lambda a, b: a @ b, (2, 4, 3), (2, 3, 2))

    def test_exp(self):
        check_grad(lambda a: a.exp(), (4, 2))

    def test_log(self):
        check_grad(lambda a: a.log(), (6,), nonneg=True)

    def test_tanh(self):
        check_grad(lambda a: a.tanh(), (3, 3))

    def test_sigmoid(self):
        check_grad(lambda a: a.sigmoid(), (7,))

    def test_leaky_relu(self):
        check_grad(lambda a: a.leaky_relu(0.1), (10,), seed=3)

    def test_sum_axis(self):
        check_grad(lambda a: a.sum(axis=1), (4, 5))

    def test_sum_keepdims(self):
        check_grad(lambda a: a.sum(axis=0, keepdims=True), (4, 5))

    def test_mean(self):
        check_grad(lambda a: a.mean(), (3, 4))

    def test_max_axis(self):
        check_grad(lambda a: a.max(axis=1), (5, 4), seed=1)

    def test_reshape(self):
        check_grad(lambda a: (a.reshape(6, 2) ** 2), (3, 4))

    def test_transpose(self):
        check_grad(lambda a: a.transpose(1, 0) ** 2, (3, 4))

    def test_getitem_slice(self):
        check_grad(lambda a: a[1:3] * 2, (5, 3))

    def test_concatenate(self):
        check_grad(lambda a, b: Tensor.concatenate([a, b], axis=1), (2, 3), (2, 4))

    def test_stack(self):
        check_grad(lambda a, b: Tensor.stack([a, b], axis=0), (3,), (3,))


class TestPropertyGradients:
    """Hypothesis sweeps of composite expressions vs finite differences."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5), st.integers(2, 5))
    def test_mlp_like_expression(self, seed, n, h):
        check_grad(
            lambda x, w: ((x @ w).tanh() ** 2).mean(),
            (n, 3), (3, h), seed=seed,
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_mixed_pointwise(self, seed):
        check_grad(
            lambda a, b: (a.sigmoid() * b.tanh() + a * 0.5).sum(),
            (4, 4), (4, 4), seed=seed,
        )


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (x * 2).backward()

    def test_backward_on_detached_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError, match="does not require grad"):
            x.backward()

    def test_grad_accumulates_over_backwards(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, 4.0)

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_shared_subexpression(self):
        """A tensor used twice gets both gradient contributions."""
        x = Tensor(np.array([2.0]), requires_grad=True, dtype=np.float64)
        y = x * x  # dy/dx = 2x = 4
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True, dtype=np.float64)
        a = x * 2
        b = x * 5
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._parents == ()

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad

    def test_constants_not_tracked(self):
        x = Tensor(np.ones(3))
        y = x * 2
        assert not y.requires_grad

    def test_ndarray_interop(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = np.ones(3) + x  # __radd__ must kick in
        assert isinstance(y, Tensor)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, 1.0)

    def test_repr(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))
