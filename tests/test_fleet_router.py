"""Fleet control-plane tests: router, failover, autoscaler, metric merge."""

import numpy as np
import pytest

from repro.fleet import (
    AutoscaleConfig,
    Autoscaler,
    FleetRouter,
    FleetWorker,
    HeartbeatMonitor,
    WorkerUnavailable,
)
from repro.resilience.faults import FaultSpec, inject
from repro.serve import (
    FleetLoadGenerator,
    Histogram,
    MetricsRegistry,
    ServeConfig,
    SimulatedClock,
    SubmitResult,
)


class _MeanModel:
    """Row-independent stub: label = (mean of sensor 0 > 50)."""

    def predict(self, X):
        X = np.asarray(X)
        return (X[:, :, 0].mean(axis=1) > 50.0).astype(np.int64)


def _series(n_rows, seed=0, n_series=6):
    rng = np.random.default_rng(seed)
    return [rng.random((n_rows, 7)) * 100.0 for _ in range(n_series)]


def _config(**over):
    # window == hop == chunk: one emission per served chunk.
    defaults = dict(window=90, hop=90, flush_deadline_s=0.0)
    defaults.update(over)
    return ServeConfig(**defaults)


def _fleet(n_workers, clock, *, history=None, capacity=None, health=None,
           config=None):
    config = config or _config()
    workers = [
        FleetWorker(f"w{i}", _MeanModel(), config, clock=clock,
                    capacity_per_step=capacity, heartbeat=health)
        for i in range(n_workers)
    ]
    return FleetRouter(workers, clock=clock, history=history, health=health)


def _gen(clock, *, n_jobs=8, rows=900, seed=3):
    return FleetLoadGenerator(
        _series(rows), n_jobs=n_jobs, samples_per_tick=90,
        max_samples_per_job=rows, seed=seed, clock=clock,
    )


def _trace(emissions):
    out = {}
    for e in emissions:
        out.setdefault(e.job_id, []).append(
            (e.prediction.sample_index, e.prediction.label,
             e.prediction.smoothed_label, e.prediction.confidence))
    return out


class TestRouting:
    def test_session_affinity_follows_the_ring(self):
        clock = SimulatedClock()
        router = _fleet(3, clock)
        for job in range(12):
            assert router.submit(job, np.ones((5, 7))) is SubmitResult.ACCEPTED
            assert router.owner_of(job) == router.ring.owner(job)
        router.step()
        # every session lives on exactly the worker the ring names
        per_worker = {wid: router.worker(wid).n_sessions
                      for wid in router.worker_ids}
        assert sum(per_worker.values()) == 12
        assert router.n_sessions == 12

    def test_router_drives_like_a_single_server(self):
        clock = SimulatedClock()
        gen = _gen(clock)
        router = _fleet(3, clock, history=gen.job_stream)
        report = gen.run(router)
        # 900 rows / 90-row windows -> 10 emissions per job, exactly once
        emitted = sorted((e.job_id, e.prediction.sample_index)
                         for e in report.emissions)
        expected = sorted((job, 90 * (k + 1))
                          for job in range(gen.n_jobs) for k in range(10))
        assert emitted == expected

    def test_submit_with_no_workers_left_raises(self):
        clock = SimulatedClock()
        router = _fleet(1, clock)
        router.worker("w0").kill()
        with pytest.raises(WorkerUnavailable):
            router.submit(0, np.ones((5, 7)))


class TestFailover:
    def _run(self, kill_tick=None, n_workers=3):
        clock = SimulatedClock()
        gen = _gen(clock)
        router = _fleet(n_workers, clock, history=gen.job_stream)
        victim = router.owner_of(0)

        def on_tick(tick, emissions):
            if kill_tick is not None and tick == kill_tick:
                if victim in router.worker_ids:
                    router.worker(victim).kill()

        report = gen.run(router, on_tick=on_tick)
        return report, router, victim

    def test_crash_failover_is_emission_parity_with_unfailed_twin(self):
        clean, _, _ = self._run(kill_tick=None)
        killed, router, victim = self._run(kill_tick=4)
        assert _trace(killed.emissions) == _trace(clean.emissions)
        events = [e for e in router.events if e.kind == "failover"]
        assert len(events) == 1
        assert events[0].worker_id == victim
        assert victim not in router.worker_ids
        assert victim not in router.ring

    def test_crash_via_fault_point_mid_step(self):
        clean, _, _ = self._run(kill_tick=None)
        clock = SimulatedClock()
        gen = _gen(clock)
        router = _fleet(3, clock, history=gen.job_stream)
        victim = router.owner_of(0)
        idx = sorted(router.worker_ids).index(victim)
        with inject(FaultSpec("fleet.worker.crash", at_hit=3 * 3 + idx + 1,
                              mode="raise")):
            report = gen.run(router)
        assert _trace(report.emissions) == _trace(clean.emissions)
        assert router.metrics.counter("fleet.failovers").value == 1
        # the mid-step crash lost routed-but-unserved chunks; replay
        # must have re-emitted at least one window for them
        assert router.metrics.counter("fleet.predictions.recovered").value >= 1

    def test_failover_without_history_restarts_cold(self):
        clock = SimulatedClock()
        gen = _gen(clock)
        router = _fleet(3, clock, history=None)
        victim = router.owner_of(0)

        def on_tick(tick, emissions):
            if tick == 4 and victim in router.worker_ids:
                router.worker(victim).kill()

        report = gen.run(router, on_tick=on_tick)
        clean, _, _ = self._run(kill_tick=None)
        # rerouting still works, but the migrated session restarted cold:
        # its sample_index numbering resets, so the trace diverges from
        # the unfailed twin (with history replay it would match — pinned
        # by test_crash_failover_is_emission_parity_with_unfailed_twin)
        assert _trace(report.emissions)[0] != _trace(clean.emissions)[0]
        assert victim not in router.worker_ids


class TestMembership:
    def test_add_worker_migrates_exactly_the_claimed_jobs(self):
        clock = SimulatedClock()
        gen = _gen(clock)
        router = _fleet(2, clock, history=gen.job_stream)
        moved = []

        def on_tick(tick, emissions):
            if tick == 4:
                # "w3" verifiably claims jobs {1, 3} on this ring layout
                worker = FleetWorker("w3", _MeanModel(), _config(),
                                     clock=clock)
                moved.extend(router.add_worker(worker))

        report = gen.run(router, on_tick=on_tick)
        assert moved, "new worker claimed no jobs; pick a different id"
        for job in moved:
            assert router.ring.owner(job) == "w3"
        # lossless resize: exactly-once emission across the migration
        emitted = sorted((e.job_id, e.prediction.sample_index)
                         for e in report.emissions)
        expected = sorted((job, 90 * (k + 1))
                          for job in range(gen.n_jobs) for k in range(10))
        assert emitted == expected

    def test_remove_worker_hands_off_losslessly(self):
        clock = SimulatedClock()
        gen = _gen(clock)
        router = _fleet(3, clock, history=gen.job_stream)

        def on_tick(tick, emissions):
            if tick == 4 and router.n_workers == 3:
                router.remove_worker(router.worker_ids[-1])

        report = gen.run(router, on_tick=on_tick)
        assert router.n_workers == 2
        emitted = sorted((e.job_id, e.prediction.sample_index)
                         for e in report.emissions)
        expected = sorted((job, 90 * (k + 1))
                          for job in range(gen.n_jobs) for k in range(10))
        assert emitted == expected
        assert any(e.kind == "scale-down" for e in router.events)

    def test_cannot_remove_last_worker(self):
        router = _fleet(1, SimulatedClock())
        with pytest.raises(ValueError, match="last"):
            router.remove_worker("w0")

    def test_duplicate_worker_rejected(self):
        clock = SimulatedClock()
        router = _fleet(2, clock)
        with pytest.raises(ValueError, match="duplicate|already"):
            router.add_worker(FleetWorker("w0", _MeanModel(), _config(),
                                          clock=clock))


class TestHealth:
    def test_lease_expiry_triggers_failover(self):
        clock = SimulatedClock()
        health = HeartbeatMonitor(lease_s=25.0, clock=clock)
        gen = _gen(clock)
        router = _fleet(3, clock, history=gen.job_stream, health=health)
        clean_clock = SimulatedClock()
        clean_gen = _gen(clean_clock)
        clean = clean_gen.run(_fleet(3, clean_clock,
                                     history=clean_gen.job_stream))
        victim = router.owner_of(0)
        # Drop every one of the victim's beats from tick 2 on: it keeps
        # serving until the lease (2.5 ticks) lapses, then is failed over
        # by the health check even though no call into it ever errored.
        n = router.n_workers
        idx = sorted(router.worker_ids).index(victim)
        specs = [
            FaultSpec("fleet.heartbeat.drop", at_hit=tick * n + idx + 1,
                      mode="raise")
            for tick in range(2, 10)
        ]
        with inject(*specs):
            report = gen.run(router)
        assert router.metrics.counter("fleet.lease_expired").value == 1
        assert victim not in router.worker_ids
        assert _trace(report.emissions) == _trace(clean.emissions)

    def test_dropped_beats_within_lease_do_not_page(self):
        clock = SimulatedClock()
        health = HeartbeatMonitor(lease_s=25.0, clock=clock)
        monitorees = _fleet(2, clock, health=health)
        # one dropped beat (lease covers 2.5 ticks) must not expire anyone
        with inject(FaultSpec("fleet.heartbeat.drop", at_hit=1,
                              mode="raise")):
            monitorees.step()
        clock.advance(10.0)
        monitorees.step()
        assert health.expired() == []

    def test_monitor_validates_lease(self):
        with pytest.raises(ValueError, match="lease"):
            HeartbeatMonitor(lease_s=0.0)


class _FakeRouter:
    """Minimal router surface for exercising the control loop alone."""

    def __init__(self):
        self.queue_depth = 0
        self._ids = ["w0"]

    @property
    def n_workers(self):
        return len(self._ids)

    @property
    def worker_ids(self):
        return list(self._ids)

    def add_worker(self, worker):
        self._ids.append(worker.worker_id)

    def remove_worker(self, worker_id):
        self._ids.remove(worker_id)


class _FakeWorker:
    def __init__(self, worker_id):
        self.worker_id = worker_id


class TestAutoscaler:
    def _scaler(self, **over):
        router = _FakeRouter()
        defaults = dict(min_workers=1, max_workers=3,
                        high_queue_per_worker=10.0, low_queue_per_worker=2.0,
                        for_ticks=2, cooldown_ticks=3)
        defaults.update(over)
        scaler = Autoscaler(router, _FakeWorker,
                            config=AutoscaleConfig(**defaults))
        return router, scaler

    def test_debounce_requires_consecutive_breaches(self):
        router, scaler = self._scaler()
        router.queue_depth = 50
        assert scaler.tick() is None            # streak 1
        router.queue_depth = 5                  # breach interrupted
        assert scaler.tick() is None
        router.queue_depth = 50
        assert scaler.tick() is None            # streak 1 again
        decision = None
        router.queue_depth = 50
        decision = scaler.tick()                # streak 2 -> act
        assert decision is not None and decision.action == "scale-up"
        assert router.n_workers == 2

    def test_cooldown_blocks_consecutive_actions(self):
        router, scaler = self._scaler(for_ticks=1, cooldown_ticks=2)
        router.queue_depth = 100
        assert scaler.tick().action == "scale-up"       # acts immediately
        assert scaler.tick() is None                    # cooldown 2
        assert scaler.tick() is None                    # cooldown 1
        assert scaler.tick().action == "scale-up"       # window closed
        assert router.n_workers == 3

    def test_bounds_are_respected(self):
        router, scaler = self._scaler(for_ticks=1, cooldown_ticks=0,
                                      max_workers=2)
        router.queue_depth = 100
        for _ in range(5):
            scaler.tick()
        assert router.n_workers == 2                    # clamped at max
        router.queue_depth = 0
        for _ in range(5):
            scaler.tick()
        assert router.n_workers == 1                    # clamped at min

    def test_scale_down_retires_newest_worker_first(self):
        router, scaler = self._scaler(for_ticks=1, cooldown_ticks=0)
        router.queue_depth = 100
        scaler.tick()
        router.queue_depth = 0
        decision = scaler.tick()
        assert decision.action == "scale-down"
        assert decision.worker_id == "auto-1"
        assert router.worker_ids == ["w0"]

    def test_config_validation(self):
        with pytest.raises(ValueError, match="min_workers"):
            AutoscaleConfig(min_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            AutoscaleConfig(min_workers=4, max_workers=2)
        with pytest.raises(ValueError, match="low_queue_per_worker"):
            AutoscaleConfig(high_queue_per_worker=1.0,
                            low_queue_per_worker=2.0)


class TestMetricsMerge:
    def test_histogram_merge_matches_single_histogram_ground_truth(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(0.1, size=400)
        whole = Histogram("h")
        parts = [Histogram("h") for _ in range(4)]
        for i, v in enumerate(values):
            whole.observe(v)
            parts[i % 4].observe(v)
        merged = Histogram("h")
        for part in parts:
            merged.merge(part)
        truth, got = whole.summary(), merged.summary()
        assert got["count"] == truth["count"] == 400
        for q in ("p50", "p95", "p99", "min", "max", "mean"):
            assert got[q] == pytest.approx(truth[q]), q

    def test_registry_merge_matches_single_registry_ground_truth(self):
        whole = MetricsRegistry()
        parts = [MetricsRegistry() for _ in range(3)]
        for i in range(90):
            for r in (whole, parts[i % 3]):
                r.counter("chunks").inc()
                r.gauge("depth").inc(i % 5)
                r.histogram("lat").observe(i * 0.01)
        merged = MetricsRegistry()
        for part in parts:
            merged.merge(part)
        assert merged.counter("chunks").value == whole.counter("chunks").value
        assert merged.gauge("depth").value == whole.gauge("depth").value
        truth = whole.histogram("lat").summary()
        got = merged.histogram("lat").summary()
        # percentiles/extremes are exact; mean differs only by float
        # summation order
        for key in ("count", "min", "p50", "p95", "p99", "max"):
            assert got[key] == truth[key], key
        assert got["mean"] == pytest.approx(truth["mean"])

    def test_registry_merge_preserves_nondefault_histogram_capacity(self):
        # Regression: a merged-in histogram created with a non-default
        # capacity must not be re-created at the default capacity on the
        # merging registry — that silently re-decimates worker latency
        # distributions during fleet aggregation.
        part = MetricsRegistry()
        big = part.histogram("lat", capacity=4096)
        for i in range(3000):
            big.observe(i * 1e-4)
        merged = MetricsRegistry()
        merged.merge(part)
        assert merged.histogram("lat").capacity == 4096
        # no decimation happened: the full distribution survived intact
        assert len(merged.histogram("lat")._values) == 3000
        assert merged.histogram("lat").percentile(50) == pytest.approx(
            big.percentile(50))

    def test_registry_merge_of_decimated_histograms_with_mixed_capacities(self):
        small, large = MetricsRegistry(), MetricsRegistry()
        for i in range(5000):
            small.histogram("lat", capacity=32).observe(i * 1e-3)
            large.histogram("lat", capacity=512).observe(i * 1e-3)
        merged = MetricsRegistry()
        merged.merge(large)
        merged.merge(small)
        h = merged.histogram("lat")
        assert h.capacity == 512            # first-merged capacity sticks
        assert h.count == 10000
        # extremes are exact even though both sources decimated heavily
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == pytest.approx(4.999)
        assert abs(h.percentile(50) - 2.5) < 0.5

    def test_fleet_metrics_aggregates_router_and_workers(self):
        clock = SimulatedClock()
        gen = _gen(clock)
        router = _fleet(3, clock, history=gen.job_stream)
        gen.run(router)
        fleet = router.fleet_metrics()
        per_worker = sum(
            router.worker(wid).metrics_registry()
            .counter("predictions.emitted").value
            for wid in router.worker_ids
        )
        assert fleet.counter("predictions.emitted").value == per_worker
        assert fleet.counter("fleet.chunks.routed").value == (
            router.metrics.counter("fleet.chunks.routed").value)
        assert fleet.gauge("fleet.workers").value == 3
