"""Data-parallel training: bit-identical to single-process at any n_jobs.

The determinism contract (see :mod:`repro.nn.training.parallel`): the
training trajectory is a pure function of ``shard_size`` — never of
``n_jobs`` — so the same fit can be replayed serially, with in-process
shards, or across a SIGKILL-prone worker pool and land on the same bits.
Worker-pool tests keep worker counts and epochs small: each spawn costs
1–2 s on the CI box.
"""

import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.lstm_baseline import LSTMClassifier
from repro.nn.loss import NLLLoss
from repro.nn.optim.adam import Adam
from repro.nn.tensor import Tensor
from repro.nn.training.parallel import (
    flatten_grads,
    param_layout,
    reduce_flat_grads,
    scatter_flat_grads,
    shard_rngs,
)
from repro.nn.training.trainer import Trainer
from repro.resilience.faults import FaultSpec


def _data(n=64, t=20, d=7, k=5, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, t, d)).astype(np.float32)
    y = rng.integers(0, k, size=n).astype(np.int64)
    return X, y


def _run(n_jobs, shard_size, dropout, epochs=2, seed=0, worker_faults=None,
         checkpoint_path=None, batch_size=16):
    X, y = _data(seed=seed)
    Xv, yv = X[:16], y[:16]
    model = LSTMClassifier(n_sensors=7, seq_len=20, n_classes=5,
                           hidden_size=16, dropout=dropout, seed=seed)
    trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), NLLLoss(),
                      batch_size=batch_size, max_epochs=epochs, patience=100,
                      shuffle_rng=seed, n_jobs=n_jobs, shard_size=shard_size,
                      worker_faults=worker_faults)
    with trainer:
        hist = trainer.fit(X, y, Xv, yv, checkpoint_path=checkpoint_path)
    return (
        [(e.epoch, e.train_loss, e.val_accuracy, e.lr) for e in hist.epochs],
        {n: p.data.copy() for n, p in model.named_parameters()},
    )


def _assert_same(a, b, what):
    assert a[0] == b[0], f"{what}: trajectory differs:\n{a[0]}\n{b[0]}"
    for name in a[1]:
        assert np.array_equal(a[1][name], b[1][name]), (
            f"{what}: final parameter {name} differs")


# ----------------------------------------------------------------------
# flat-gradient plumbing
# ----------------------------------------------------------------------
class TestFlatGradients:
    def _params(self, seed=0):
        rng = np.random.default_rng(seed)
        return [Tensor(rng.standard_normal(s).astype(np.float32),
                       requires_grad=True)
                for s in [(3, 4), (4,), (2, 5)]]

    def test_layout_covers_all_values(self):
        params = self._params()
        layout, total = param_layout(params)
        assert total == sum(p.data.size for p in params)
        assert layout[0][0] == 0 and layout[-1][1] == total
        for (_, stop), (start, _) in zip(layout[:-1], layout[1:]):
            assert stop == start

    def test_flatten_scatter_roundtrip(self):
        params = self._params()
        layout, total = param_layout(params)
        rng = np.random.default_rng(1)
        grads = [rng.standard_normal(p.data.shape).astype(np.float32)
                 for p in params]
        for p, g in zip(params, grads):
            p._accum(g)
        flat = np.empty(total, np.float32)
        flatten_grads(params, layout, flat)
        for p in params:
            p.zero_grad()
        scatter_flat_grads(params, layout, flat)
        for p, g in zip(params, grads):
            np.testing.assert_array_equal(p.grad, g)

    def test_flatten_zeros_absent_grads(self):
        params = self._params()
        layout, total = param_layout(params)
        params[0]._accum(np.ones((3, 4), np.float32))
        flat = np.full(total, -1.0, np.float32)
        flatten_grads(params, layout, flat)
        np.testing.assert_array_equal(flat[:12], 1.0)
        np.testing.assert_array_equal(flat[12:], 0.0)

    def test_reduce_is_serial_shard_order(self):
        # copyto(acc, g0) then add in ascending shard order — the exact
        # float32 sum the single-process loop produces.
        rng = np.random.default_rng(2)
        gblock = rng.standard_normal((4, 9)).astype(np.float32)
        out = np.empty(9, np.float32)
        reduce_flat_grads(gblock, 3, out)
        expected = gblock[0].copy()
        for s in (1, 2):
            expected += gblock[s]
        np.testing.assert_array_equal(out, expected)

    def test_shard_rngs_depend_on_shard_index(self):
        a = shard_rngs({"m": 123}, 0)["m"].random(4)
        b = shard_rngs({"m": 123}, 1)["m"].random(4)
        a2 = shard_rngs({"m": 123}, 0)["m"].random(4)
        np.testing.assert_array_equal(a, a2)
        assert not np.array_equal(a, b)


# ----------------------------------------------------------------------
# in-process sharding (no worker pool — cheap enough for hypothesis)
# ----------------------------------------------------------------------
class TestInProcessSharding:
    def test_one_shard_matches_legacy(self):
        # shard_size == batch_size, dropout off: the sharded step must
        # reproduce the classic loop exactly (backward(1.0) ≡ backward()).
        legacy = _run(n_jobs=1, shard_size=None, dropout=0.0)
        one_shard = _run(n_jobs=1, shard_size=16, dropout=0.0)
        _assert_same(legacy, one_shard, "one-shard vs legacy")

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([4, 8, 16]),
           st.sampled_from([8, 16]))
    def test_trajectory_is_function_of_shard_size(self, seed, shard, batch):
        # Same shard_size via different in-process decompositions: the
        # sharded path may not depend on anything but the shard bounds.
        a = _run(n_jobs=1, shard_size=min(shard, batch), dropout=0.0,
                 epochs=1, seed=seed, batch_size=batch)
        b = _run(n_jobs=1, shard_size=min(shard, batch), dropout=0.0,
                 epochs=1, seed=seed, batch_size=batch)
        _assert_same(a, b, f"replay shard={shard} batch={batch}")
        if shard >= batch:
            legacy = _run(n_jobs=1, shard_size=None, dropout=0.0,
                          epochs=1, seed=seed, batch_size=batch)
            _assert_same(a, legacy, f"one-shard shard={shard} batch={batch}")


# ----------------------------------------------------------------------
# worker pools
# ----------------------------------------------------------------------
class TestWorkerPoolParity:
    def test_n_jobs_bit_identical(self):
        # The headline gate: n_jobs ∈ {1, 2, 4} at pinned shard_size,
        # dropout on, must produce the same bits.
        runs = {j: _run(n_jobs=j, shard_size=4, dropout=0.5) for j in (1, 2, 4)}
        _assert_same(runs[1], runs[2], "n_jobs=2 vs in-process")
        _assert_same(runs[1], runs[4], "n_jobs=4 vs in-process")

    def test_sigkilled_worker_recovers_bit_identical(self):
        # SIGKILL a worker on its 3rd shard mid-epoch; the pool respawns
        # it (fault stripped) and redoes the lost shard.
        clean = _run(n_jobs=2, shard_size=4, dropout=0.5)
        crashed = _run(
            n_jobs=2, shard_size=4, dropout=0.5,
            worker_faults=[FaultSpec("train.worker.crash", at_hit=3,
                                     mode="kill")])
        _assert_same(clean, crashed, "SIGKILLed worker recovery")

    def test_checkpoint_resume_bit_exact(self):
        X, y = _data()
        Xv, yv = X[:16], y[:16]
        full = _run(n_jobs=2, shard_size=4, dropout=0.5, epochs=4)
        with tempfile.TemporaryDirectory() as td:
            ck = os.path.join(td, "ck.pkl")
            _run(n_jobs=2, shard_size=4, dropout=0.5, epochs=2,
                 checkpoint_path=ck)
            model = LSTMClassifier(n_sensors=7, seq_len=20, n_classes=5,
                                   hidden_size=16, dropout=0.5, seed=0)
            trainer = Trainer(model, Adam(model.parameters(), lr=1e-3),
                              NLLLoss(), batch_size=16, max_epochs=4,
                              patience=100, shuffle_rng=0, n_jobs=2,
                              shard_size=4)
            with trainer:
                hist = trainer.resume(ck, X, y, Xv, yv)
        resumed = (
            [(e.epoch, e.train_loss, e.val_accuracy, e.lr)
             for e in hist.epochs],
            {n: p.data.copy() for n, p in model.named_parameters()},
        )
        _assert_same(full, resumed, "checkpoint/resume at n_jobs=2")

    def test_n_jobs_validation(self):
        model = LSTMClassifier(n_sensors=7, seq_len=20, n_classes=5,
                               hidden_size=16, seed=0)
        with pytest.raises(ValueError):
            Trainer(model, Adam(model.parameters(), lr=1e-3), NLLLoss(),
                    n_jobs=0)


# ----------------------------------------------------------------------
# chunked evaluate_accuracy
# ----------------------------------------------------------------------
class TestChunkedEvaluateAccuracy:
    def _trainer(self, batch_size):
        model = LSTMClassifier(n_sensors=7, seq_len=20, n_classes=5,
                               hidden_size=16, seed=0)
        return Trainer(model, Adam(model.parameters(), lr=1e-3), NLLLoss(),
                       batch_size=batch_size)

    @pytest.mark.parametrize("n,batch", [(1, 16), (16, 16), (17, 16),
                                         (33, 8), (5, 64)])
    def test_matches_full_batch_mean(self, n, batch):
        X, y = _data(n=max(n, 1))
        X, y = X[:n], y[:n]
        trainer = self._trainer(batch)
        acc = trainer.evaluate_accuracy(X, y)
        pred = trainer.predict(X)
        assert acc == float(np.mean(pred == y))

    def test_empty_is_nan(self):
        X, y = _data(n=4)
        trainer = self._trainer(16)
        assert np.isnan(trainer.evaluate_accuracy(X[:0], y[:0]))


# ----------------------------------------------------------------------
# chunked datagen dispatch
# ----------------------------------------------------------------------
class TestChunkedDatagenDispatch:
    def test_chunks_not_single_jobs(self, monkeypatch):
        # The regression this pins: per-job dispatch made parallel datagen
        # slower than serial.  Force a multi-core view and capture what
        # generate() hands the pool — contiguous chunks, ~2 per worker,
        # and the flattened result must be bit-identical to serial.
        from repro.simcluster import cluster as mod

        cfg = mod.SimulationConfig(seed=11, trials_scale=0.004,
                                   min_jobs_per_class=1)
        serial_jobs, serial_log = mod.ClusterSimulator(cfg).generate()

        dispatched = []

        def fake_parallel_map(fn, items, n_jobs=None, chunksize=1):
            dispatched.extend(items)
            return [fn(item) for item in items]

        monkeypatch.setattr(mod, "effective_n_jobs", lambda n: 2)
        monkeypatch.setattr(mod, "parallel_map", fake_parallel_map)
        par_jobs, par_log = mod.ClusterSimulator(cfg).generate(n_jobs=2)

        plan_len = len(mod.ClusterSimulator(cfg).job_plan())
        assert 1 < len(dispatched) <= 4  # chunks, not plan_len messages
        assert sum(len(c) for c in dispatched) == plan_len
        assert all(len(c) > 0 for c in dispatched)

        assert list(serial_log) == list(par_log)
        assert len(serial_jobs) == len(par_jobs)
        for a, b in zip(serial_jobs, par_jobs):
            assert a.record == b.record
            for ga, gb in zip(a.gpu_series, b.gpu_series):
                assert np.array_equal(ga.data, gb.data)
