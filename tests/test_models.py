"""Tests for the baseline model zoo (paper Sections IV & V configs)."""

import numpy as np
import pytest

from repro.models import (
    CNN_LSTM_PAPER_VARIANTS,
    CNNLSTMClassifier,
    LSTMClassifier,
    PAPER_PCA_DIMS,
    PAPER_RF_TREES,
    PAPER_SVM_C,
    make_rf_cov,
    make_rf_pca,
    make_svm_cov,
    make_svm_pca,
    make_xgb_cov,
    traditional_grid,
)
from repro.nn import Tensor


class TestPaperGrids:
    def test_svm_c_values(self):
        """Section IV-A: C in {0.1, 1.0, 10.0}."""
        assert PAPER_SVM_C == (0.1, 1.0, 10.0)

    def test_rf_tree_values(self):
        """Section IV-A: estimators in {50, 100, 250}."""
        assert PAPER_RF_TREES == (50, 100, 250)

    def test_pca_dims(self):
        """Section IV-A: PCA dims in {28, 64, 256, 512}."""
        assert PAPER_PCA_DIMS == (28, 64, 256, 512)

    def test_traditional_grid_shapes(self):
        for model in ("svm_pca", "svm_cov", "rf_pca", "rf_cov"):
            pipeline, grid = traditional_grid(model)
            assert hasattr(pipeline, "fit")
            assert all("__" in k for k in grid)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            traditional_grid("mlp")


def _tiny_challenge_tensor(n=40, t=30, s=7, k=3, seed=0):
    """Class-separable 3-D tensor: class shifts channel means."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, k, n)
    X = rng.normal(0, 0.5, size=(n, t, s)).astype(np.float32)
    for c in range(k):
        X[y == c, :, c % s] += 2.0 + c
    return X, y


class TestTraditionalPipelines:
    @pytest.mark.parametrize("factory,kwargs", [
        (make_svm_cov, {}),
        (make_svm_pca, {"n_components": 10}),
        (make_rf_cov, {"n_estimators": 20}),
        (make_rf_pca, {"n_estimators": 20, "n_components": 10}),
        (make_xgb_cov, {"n_estimators": 5}),
    ])
    def test_fit_predict_3d(self, factory, kwargs):
        X, y = _tiny_challenge_tensor()
        pipe = factory(**kwargs)
        pipe.fit(X[:30], y[:30])
        preds = pipe.predict(X[30:])
        assert preds.shape == (10,)
        assert pipe.score(X[:30], y[:30]) > 0.8

    def test_cov_pipeline_produces_28_features(self):
        X, y = _tiny_challenge_tensor()
        pipe = make_rf_cov(n_estimators=5)
        pipe.fit(X, y)
        feats = pipe._transform_through(X, upto=2)
        assert feats.shape == (40, 28)

    def test_pca_pipeline_flattens_first(self):
        X, y = _tiny_challenge_tensor()
        pipe = make_svm_pca(n_components=6)
        pipe.fit(X, y)
        feats = pipe._transform_through(X, upto=3)
        assert feats.shape == (40, 6)


class TestLSTMClassifier:
    def test_forward_shape(self):
        model = LSTMClassifier(n_sensors=7, seq_len=20, n_classes=5,
                               hidden_size=8, seed=0)
        out = model(Tensor(np.random.default_rng(0)
                           .normal(size=(3, 20, 7)).astype(np.float32)))
        assert out.shape == (3, 5)

    def test_output_is_log_probabilities(self):
        model = LSTMClassifier(n_sensors=7, seq_len=20, n_classes=5,
                               hidden_size=8, seed=0)
        model.eval()
        out = model(Tensor(np.zeros((2, 20, 7), dtype=np.float32)))
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0,
                                   atol=1e-5)

    def test_two_layer_variant(self):
        m1 = LSTMClassifier(n_sensors=3, seq_len=10, n_classes=2,
                            hidden_size=4, n_layers=1, seed=0)
        m2 = LSTMClassifier(n_sensors=3, seq_len=10, n_classes=2,
                            hidden_size=4, n_layers=2, seed=0)
        assert m2.n_parameters() > m1.n_parameters()
        out = m2(Tensor(np.zeros((2, 10, 3), dtype=np.float32)))
        assert out.shape == (2, 2)

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            LSTMClassifier(n_layers=3)

    def test_projection_matches_paper_description(self):
        """fc1 projects the 2H concat to seq_len (Section V-A)."""
        model = LSTMClassifier(n_sensors=7, seq_len=33, n_classes=26,
                               hidden_size=16, seed=0)
        assert model.fc1.in_features == 32
        assert model.fc1.out_features == 33

    def test_predict_helper(self):
        model = LSTMClassifier(n_sensors=3, seq_len=8, n_classes=4,
                               hidden_size=4, seed=0)
        X = np.random.default_rng(1).normal(size=(10, 8, 3)).astype(np.float32)
        preds = model.predict(X, batch_size=4)
        assert preds.shape == (10,)
        assert set(preds.tolist()) <= set(range(4))


class TestCNNLSTMClassifier:
    def test_paper_variants_table(self):
        """Table VI lists four CNN-LSTM rows."""
        assert len(CNN_LSTM_PAPER_VARIANTS) == 4
        hidden = [v[1] for v in CNN_LSTM_PAPER_VARIANTS]
        assert hidden == [128, 256, 512, 512]
        # The small-kernel variant has smaller kernel and stride.
        small = CNN_LSTM_PAPER_VARIANTS[-1]
        assert small[2] < CNN_LSTM_PAPER_VARIANTS[0][2]
        assert small[3] < CNN_LSTM_PAPER_VARIANTS[0][3]

    def test_forward_shape(self):
        model = CNNLSTMClassifier(n_sensors=7, seq_len=60, n_classes=5,
                                  hidden_size=8, kernel_size=5, stride=2,
                                  conv_channels=(4, 8), seed=0)
        out = model(Tensor(np.random.default_rng(0)
                           .normal(size=(2, 60, 7)).astype(np.float32)))
        assert out.shape == (2, 5)

    def test_conv_front_end_shrinks_sequence(self):
        """The default front end cuts a 540-window ~8x (the paper's
        training speed-up mechanism)."""
        model = CNNLSTMClassifier(seq_len=540, hidden_size=8,
                                  conv_channels=(4, 8), seed=0)
        assert model.lstm_seq_len < 540 / 7

    def test_small_kernel_longer_sequence(self):
        big = CNNLSTMClassifier(seq_len=540, hidden_size=8, kernel_size=7,
                                stride=2, conv_channels=(4, 8), seed=0)
        small = CNNLSTMClassifier(seq_len=540, hidden_size=8, kernel_size=3,
                                  stride=1, conv_channels=(4, 8), seed=0)
        assert small.lstm_seq_len > big.lstm_seq_len

    def test_gradients_flow_through_stack(self):
        model = CNNLSTMClassifier(n_sensors=3, seq_len=30, n_classes=3,
                                  hidden_size=4, kernel_size=3, stride=2,
                                  conv_channels=(2, 3), seed=0)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 30, 3))
                   .astype(np.float32), requires_grad=True)
        model(x).sum().backward()
        assert x.grad is not None
        for name, p in model.named_parameters():
            assert p.grad is not None, name
