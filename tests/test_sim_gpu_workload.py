"""Tests for the GPU device model and workload generator."""

import numpy as np
import pytest

from repro.simcluster.architectures import get_architecture
from repro.simcluster.gpu import GpuModel, V100_SPEC, _first_order
from repro.simcluster.phases import PhaseKind, build_phase_schedule
from repro.simcluster.sensors import GPU_SENSORS, gpu_sensor_index
from repro.simcluster.signatures import signature_for
from repro.simcluster.workload import DEFAULT_DT_S, WorkloadGenerator


class TestFirstOrderFilter:
    def test_converges_to_constant_target(self):
        target = np.full(5000, 80.0)
        y = _first_order(target, dt=0.1, tau=5.0, y0=30.0)
        assert abs(y[-1] - 80.0) < 0.5

    def test_monotone_approach(self):
        target = np.full(200, 80.0)
        y = _first_order(target, dt=0.1, tau=5.0, y0=30.0)
        assert np.all(np.diff(y) >= -1e-9)

    def test_smooths_high_frequency(self):
        rng = np.random.default_rng(0)
        target = 50.0 + rng.normal(0, 20, size=2000)
        y = _first_order(target, dt=0.1, tau=10.0, y0=50.0)
        assert y.std() < target.std() / 3

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            _first_order(np.ones(5), dt=0.1, tau=0.0, y0=0.0)


class TestGpuModel:
    def _inputs(self, n=500):
        rng = np.random.default_rng(1)
        util = np.clip(rng.normal(70, 10, n), 0, 100)
        mem_util = np.clip(rng.normal(40, 8, n), 0, 100)
        mem_used = np.full(n, 12_000.0)
        return util, mem_util, mem_used, rng

    def test_power_within_envelope(self):
        util, mem_util, _, rng = self._inputs()
        sig = signature_for(get_architecture("VGG16"))
        p = GpuModel().power(util, mem_util, sig, rng)
        assert p.min() >= V100_SPEC.idle_power_w
        assert p.max() <= V100_SPEC.tdp_w

    def test_power_increases_with_util(self):
        sig = signature_for(get_architecture("VGG16"))
        rng = np.random.default_rng(2)
        low = GpuModel().power(np.full(200, 10.0), np.full(200, 10.0), sig, rng)
        high = GpuModel().power(np.full(200, 90.0), np.full(200, 60.0), sig, rng)
        assert high.mean() > low.mean() + 50

    def test_assemble_shape_and_order(self):
        util, mem_util, mem_used, rng = self._inputs()
        sig = signature_for(get_architecture("Bert"))
        out = GpuModel().assemble(util, mem_util, mem_used, sig, 0.1, rng)
        assert out.shape == (500, 7)
        np.testing.assert_allclose(
            out[:, gpu_sensor_index("utilization_gpu_pct")], util, atol=1e-9
        )

    def test_memory_free_plus_used_is_capacity(self):
        util, mem_util, mem_used, rng = self._inputs()
        sig = signature_for(get_architecture("Bert"))
        out = GpuModel().assemble(util, mem_util, mem_used, sig, 0.1, rng)
        free = out[:, gpu_sensor_index("memory_free_MiB")]
        used = out[:, gpu_sensor_index("memory_used_MiB")]
        np.testing.assert_allclose(free + used, V100_SPEC.memory_mib, rtol=1e-6)

    def test_all_sensors_in_physical_range(self):
        util, mem_util, mem_used, rng = self._inputs()
        sig = signature_for(get_architecture("U5-128"))
        out = GpuModel().assemble(util, mem_util, mem_used, sig, 0.1, rng)
        for j, spec in enumerate(GPU_SENSORS):
            assert out[:, j].min() >= spec.lo, spec.name
            assert out[:, j].max() <= spec.hi, spec.name

    def test_temperature_lags_power(self):
        """Thermal response is low-pass: temperature must vary less
        (relatively) than power."""
        rng = np.random.default_rng(3)
        power = np.clip(50 + 100 * (rng.random(2000) > 0.5), 0, 300)
        t_core, _ = GpuModel().temperatures(power, np.zeros(2000), dt=0.11)
        assert t_core.std() / t_core.mean() < power.std() / power.mean()


class TestWorkloadGenerator:
    def test_series_shape_matches_duration(self):
        gen = WorkloadGenerator()
        telemetry = gen.generate_job(
            get_architecture("VGG11"), 200.0, np.random.default_rng(0)
        )
        series = telemetry.gpu_series[0]
        assert series.n_samples == int(round(200.0 / DEFAULT_DT_S))
        assert series.data.shape[1] == 7

    def test_multi_gpu_count_and_shared_rhythm(self):
        gen = WorkloadGenerator()
        telemetry = gen.generate_job(
            get_architecture("ResNet50"), 220.0, np.random.default_rng(1), n_gpus=3
        )
        assert len(telemetry.gpu_series) == 3
        # Data-parallel GPUs share step phase: utilization traces should be
        # strongly correlated (not identical).
        a = telemetry.gpu_series[0].data[:, 0]
        b = telemetry.gpu_series[1].data[:, 0]
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.8
        assert not np.array_equal(a, b)

    def test_startup_is_quiet(self):
        """During startup GPU utilization must be near idle for all classes
        — the generic-start mechanism."""
        gen = WorkloadGenerator()
        for name in ("VGG19", "Bert", "NNConv"):
            telemetry = gen.generate_job(
                get_architecture(name), 250.0, np.random.default_rng(7)
            )
            startup = telemetry.schedule.first(PhaseKind.STARTUP)
            data = telemetry.gpu_series[0].data
            n_start = int(startup.end_s / DEFAULT_DT_S)
            start_util = data[: max(1, n_start - 5), 0]
            assert np.median(start_util) < 15.0, name

    def test_steady_state_tracks_signature(self):
        gen = WorkloadGenerator()
        spec = get_architecture("Bert")
        telemetry = gen.generate_job(spec, 400.0, np.random.default_rng(5))
        sig = telemetry.signature
        t = np.arange(telemetry.gpu_series[0].n_samples) * DEFAULT_DT_S
        train = telemetry.schedule.mask(t, PhaseKind.TRAIN)
        util = telemetry.gpu_series[0].data[train, 0]
        # Mean steady utilization should be in the ballpark of the
        # (jittered) signature level.
        assert abs(util.mean() - sig.util_mean) < 0.45 * sig.util_mean

    def test_determinism(self):
        spec = get_architecture("Schnet")
        a = WorkloadGenerator().generate_job(spec, 180.0, np.random.default_rng(9))
        b = WorkloadGenerator().generate_job(spec, 180.0, np.random.default_rng(9))
        np.testing.assert_array_equal(
            a.gpu_series[0].data, b.gpu_series[0].data
        )

    def test_rejects_too_short_jobs(self):
        with pytest.raises(ValueError, match="too short"):
            WorkloadGenerator().generate_job(
                get_architecture("VGG11"), 50.0, np.random.default_rng(0)
            )

    def test_rejects_bad_gpu_count(self):
        with pytest.raises(ValueError, match="n_gpus"):
            WorkloadGenerator().generate_job(
                get_architecture("VGG11"), 200.0, np.random.default_rng(0), n_gpus=0
            )

    def test_jitter_varies_between_jobs(self):
        gen = WorkloadGenerator()
        spec = get_architecture("Inception3")
        sig = signature_for(spec)
        j1 = gen.jitter_signature(sig, np.random.default_rng(1))
        j2 = gen.jitter_signature(sig, np.random.default_rng(2))
        assert j1.util_mean != j2.util_mean

    def test_jitter_stays_physical(self):
        gen = WorkloadGenerator()
        for name in ("VGG19", "Bert", "NNConv", "U5-128"):
            sig = signature_for(get_architecture(name))
            for seed in range(20):
                j = gen.jitter_signature(sig, np.random.default_rng(seed))
                assert 0 < j.util_mean <= 100
                assert j.step_period_s > 0
                assert 0 < j.mem_used_mib <= 0.95 * 32_510
