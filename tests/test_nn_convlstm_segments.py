"""Additional ConvLSTM coverage: end-to-end gradient through the
classifier's segmenting path, and parameter counting."""

import numpy as np

from repro.models.convlstm_model import ConvLSTMClassifier
from repro.nn import Tensor


class TestConvLSTMClassifierGradients:
    def test_gradients_reach_input_through_segmentation(self):
        """When the input Tensor requires grad, the classifier's reshape
        path must route gradients back to it."""
        model = ConvLSTMClassifier(n_sensors=3, seq_len=24, n_classes=2,
                                   n_segments=4, hidden_channels=4,
                                   head_width=8, kernel_size=3, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 24, 3))
                   .astype(np.float32), requires_grad=True)
        model(x).sum().backward()
        assert x.grad is not None
        assert x.grad.shape == (2, 24, 3)
        # All segmented samples received gradient signal somewhere.
        assert np.abs(x.grad[:, :24]).sum() > 0

    def test_parameter_count_scales_with_channels(self):
        small = ConvLSTMClassifier(n_segments=6, hidden_channels=8,
                                   seq_len=60, kernel_size=3, seed=0)
        big = ConvLSTMClassifier(n_segments=6, hidden_channels=32,
                                 seq_len=60, kernel_size=3, seed=0)
        assert big.n_parameters() > small.n_parameters()

    def test_far_fewer_parameters_than_bilstm(self):
        """The ConvLSTM's weight sharing keeps it an order of magnitude
        smaller than the dense BiLSTM baseline at comparable capacity."""
        from repro.models import LSTMClassifier

        convlstm = ConvLSTMClassifier(n_segments=12, hidden_channels=24,
                                      seq_len=540, seed=0)
        bilstm = LSTMClassifier(hidden_size=128, seq_len=540, seed=0)
        assert convlstm.n_parameters() * 5 < bilstm.n_parameters()

    def test_deterministic_forward_in_eval(self):
        model = ConvLSTMClassifier(n_sensors=3, seq_len=24, n_classes=2,
                                   n_segments=4, hidden_channels=4,
                                   head_width=8, kernel_size=3, seed=0)
        model.eval()
        x = np.random.default_rng(1).normal(size=(2, 24, 3)).astype(np.float32)
        a = model(Tensor(x)).data
        b = model(Tensor(x)).data
        np.testing.assert_array_equal(a, b)
