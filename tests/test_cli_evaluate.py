"""End-to-end test of the CLI evaluate subcommand (kept tiny)."""

from repro.cli import main


class TestCliEvaluate:
    def test_evaluate_svm_cov(self, capsys):
        rc = main([
            "evaluate", "--model", "svm_cov", "--dataset", "60-middle-1",
            "--scale", "0.004", "--seed", "11", "--cv", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "svm_cov on 60-middle-1" in out
        assert "test accuracy" in out

    def test_evaluate_xgb_prints_importances(self, capsys):
        rc = main([
            "evaluate", "--model", "xgb_cov", "--dataset", "60-random-1",
            "--scale", "0.004", "--seed", "11", "--cv", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gain importance" in out
        assert "var(" in out or "cov(" in out
