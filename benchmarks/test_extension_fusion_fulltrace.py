"""E9/E10 (extensions) — multi-rate CPU+GPU fusion and full-trace
classification.

E9 addresses the challenge's Section III-C difficulty (CPU and GPU series
have different lengths/rates for the same trial) by fusing job-level CPU
summary statistics with the GPU window's covariance features.

E10 realizes the paper's closing future-work item: classify workloads from
their *entire* start-to-finish telemetry rather than 60-second snapshots —
the covariance representation is length-invariant, so the comparison is
direct.
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, bench_sim_config
from repro.data.fulltrace import full_trace_features
from repro.data.fusion import build_fused_dataset, cpu_feature_names
from repro.data.labelled import trials_from_jobs
from repro.data.splits import train_test_split_by_group
from repro.data.windows import WindowMode, extract_window, window_offsets
from repro.ml.ensemble import RandomForestClassifier
from repro.ml.preprocessing import (
    StandardScaler,
    TimeSeriesStandardScaler,
    upper_triangle_covariance,
)
from repro.simcluster.cluster import ClusterSimulator

WINDOW = 540


def _accuracy(Xtr, ytr, Xte, yte) -> float:
    clf = RandomForestClassifier(n_estimators=100, max_features=None,
                                 random_state=0).fit(Xtr, ytr)
    return clf.score(Xte, yte)


def test_fusion_and_fulltrace(benchmark, record_result):
    jobs, _ = ClusterSimulator(bench_sim_config()).generate()
    labelled = trials_from_jobs(jobs).eligible(WINDOW)

    # --- Shared split at job granularity for all three representations.
    train_idx, test_idx = train_test_split_by_group(
        labelled.labels(), labelled.job_ids(), 0.2, rng=0
    )
    y = labelled.labels()

    # --- GPU-only: random 60 s window -> covariance features.
    rng = np.random.default_rng(0)
    offsets = window_offsets(labelled.lengths(), WINDOW, WindowMode.RANDOM, rng)
    windows = np.stack([
        extract_window(t.series, int(o), WINDOW)
        for t, o in zip(labelled.trials, offsets)
    ]).astype(np.float32)
    scaler = TimeSeriesStandardScaler().fit(windows[train_idx])
    gpu_feats = upper_triangle_covariance(scaler.transform(windows))
    acc_gpu = benchmark.pedantic(
        lambda: _accuracy(gpu_feats[train_idx], y[train_idx],
                          gpu_feats[test_idx], y[test_idx]),
        rounds=1, iterations=1,
    )

    # --- E9: fuse job-level CPU summaries with the GPU window features.
    # build_fused_dataset enumerates trials in the same jobs order used by
    # trials_from_jobs, so rows align with `labelled` after the same
    # eligibility filter.
    _, cpu_all, _, _ = build_fused_dataset(jobs)
    eligible_mask = np.array(
        [t.n_samples >= WINDOW for t in trials_from_jobs(jobs).trials]
    )
    cpu_feats = cpu_all[eligible_mask]
    assert cpu_feats.shape[0] == len(labelled)
    cpu_scaler = StandardScaler().fit(cpu_feats[train_idx])
    fused = np.hstack([gpu_feats, cpu_scaler.transform(cpu_feats)])
    acc_fused = _accuracy(fused[train_idx], y[train_idx],
                          fused[test_idx], y[test_idx])

    # --- E10: full-trace covariance features (whole variable-length series).
    X_full, y_full, _ = full_trace_features(labelled)
    acc_full = _accuracy(X_full[train_idx], y_full[train_idx],
                         X_full[test_idx], y_full[test_idx])

    report = [
        f"E9/E10 (extensions) — representation comparison, RF 100 trees, "
        f"trials_scale={BENCH_SCALE}",
        f"  GPU 60s window covariance (challenge setting): {acc_gpu:.2%}",
        f"  + fused CPU summaries ({len(cpu_feature_names())} features):"
        f"   {acc_fused:.2%}",
        f"  full-trace covariance (start-to-finish):       {acc_full:.2%}",
        "",
        "  (paper future work: 'training models on the entire dataset of "
        "workloads from start-to-finish')",
    ]
    record_result("E9_E10_fusion_fulltrace", "\n".join(report))

    # All three clear chance decisively.
    assert min(acc_gpu, acc_fused, acc_full) > 0.2
    # Fusion must not hurt: job-level CPU statistics add (weak) signal.
    assert acc_fused >= acc_gpu - 0.05
    # Full traces see every phase of the job, so they should do at least
    # as well as a random snapshot.
    assert acc_full >= acc_gpu - 0.05
