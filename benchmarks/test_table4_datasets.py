"""E3 — Table IV: the seven challenge datasets.

Regenerates all seven 60-second datasets and reports the Table IV layout
(training trials, testing trials, samples, sensors); checks the 80/20
split, the 540 × 7 window geometry, and that the suite round-trips through
the npz release format.
"""

from pathlib import Path

import numpy as np

from benchmarks.conftest import BENCH_SCALE
from repro.data.challenge import CHALLENGE_DATASET_NAMES, load_challenge_suite
from repro.data.stats import challenge_suite_table, format_table

#: Table IV as printed in the paper (full scale).
PAPER_TABLE4 = {
    "60-start-1": (14590, 3648),
    "60-middle-1": (14213, 3554),
    "60-random-1": (14184, 3546),
    "60-random-2": (14183, 3546),
    "60-random-3": (14175, 3544),
    "60-random-4": (14193, 3549),
    "60-random-5": (14193, 3549),
}


def test_table4_seven_datasets(benchmark, record_result, challenge, tmp_path):
    rows = challenge_suite_table(challenge.datasets)
    for row, name in zip(rows, CHALLENGE_DATASET_NAMES):
        row["paper_train"] = PAPER_TABLE4[name][0]
        row["paper_test"] = PAPER_TABLE4[name][1]

    def save_and_reload():
        challenge.save(tmp_path)
        return load_challenge_suite(tmp_path)

    reloaded = benchmark.pedantic(save_and_reload, rounds=1, iterations=1)

    total_mb = sum(p.stat().st_size for p in Path(tmp_path).glob("*.npz")) / 1e6
    report = [
        f"E3 / Table IV — challenge datasets (trials_scale={BENCH_SCALE}; "
        "paper columns at full scale for comparison)",
        format_table(rows),
        "",
        f"npz release size at this scale: {total_mb:.1f} MB "
        "(full release: ~2 GB labelled subset)",
    ]
    record_result("E3_table4_datasets", "\n".join(report))

    assert set(challenge.dataset_names()) == set(CHALLENGE_DATASET_NAMES)
    for name, ds in challenge.datasets.items():
        # Window geometry of the release: 540 samples x 7 sensors.
        assert ds.n_samples == 540 and ds.n_sensors == 7
        # 80/20 split within tolerance (job-level stratification rounds).
        frac = ds.n_test / (ds.n_train + ds.n_test)
        assert 0.12 < frac < 0.30, (name, frac)
        # All 26 classes present in training.
        assert len(np.unique(ds.y_train)) == 26
        # Round trip preserved content.
        np.testing.assert_array_equal(reloaded[name].y_test, ds.y_test)
    # All seven share one split (the paper splits once, then windows).
    y0 = challenge.dataset("60-start-1").y_train
    for name in CHALLENGE_DATASET_NAMES[1:]:
        np.testing.assert_array_equal(challenge.dataset(name).y_train, y0)
