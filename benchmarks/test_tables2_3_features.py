"""E2 — Tables II and III: the CPU and GPU feature schemas.

Verifies the simulator exposes exactly the released sensor sets (order
included — downstream covariance-feature naming depends on it) and
benchmarks raw telemetry-generation throughput.
"""

import numpy as np

from repro.data.stats import format_table
from repro.simcluster import (
    CPU_METRICS,
    GPU_SENSORS,
    WorkloadGenerator,
    get_architecture,
)

PAPER_GPU_SENSORS = [
    "utilization_gpu_pct",
    "utilization_memory_pct",
    "memory_free_MiB",
    "memory_used_MiB",
    "temperature_gpu",
    "temperature_memory",
    "power_draw_W",
]

PAPER_CPU_METRICS = [
    "CPUFrequency", "CPUTime", "CPUUtilization", "RSS",
    "VMSize", "Pages", "ReadMB", "WriteMB",
]


def test_tables2_3_schemas(benchmark, record_result):
    # Throughput: one 5-minute 2-GPU job's full telemetry.
    gen = WorkloadGenerator(startup_mean_s=28.0)

    def generate():
        return gen.generate_job(
            get_architecture("ResNet101"), 300.0,
            np.random.default_rng(0), n_gpus=2,
        )

    telemetry = benchmark.pedantic(generate, rounds=3, iterations=1)

    gpu_rows = [
        {"idx": i, "metric": s.name, "description": s.description,
         "unit": s.unit}
        for i, s in enumerate(GPU_SENSORS)
    ]
    cpu_rows = [
        {"metric": m.name, "description": m.description, "unit": m.unit}
        for m in CPU_METRICS
    ]
    n = telemetry.gpu_series[0].n_samples
    report = [
        "E2 / Tables II-III — telemetry feature schemas",
        "",
        "GPU time series features (Table III, dataset column order):",
        format_table(gpu_rows),
        "",
        "CPU time series features (Table II):",
        format_table(cpu_rows),
        "",
        f"sample job: 300 s on 2 GPUs -> 2 series x {n} samples x "
        f"{len(GPU_SENSORS)} sensors",
    ]
    record_result("E2_tables2_3_features", "\n".join(report))

    assert [s.name for s in GPU_SENSORS] == PAPER_GPU_SENSORS
    assert [m.name for m in CPU_METRICS] == PAPER_CPU_METRICS
    # Physical-range sanity on the generated job.
    data = telemetry.gpu_series[0].data
    for j, spec in enumerate(GPU_SENSORS):
        assert data[:, j].min() >= spec.lo
        assert data[:, j].max() <= spec.hi
