"""E6 — Table VI: RNN baselines on the start / middle / random-1 datasets.

Trains the six Section V models — BiLSTM (h=128, 1- and 2-layer) and the
four CNN-LSTM variants (h=128/256/512 and h=512 small-kernel) — with the
paper's training recipe (per-sensor standardization only, cyclical cosine
LR, dropout 0.5, early stopping, best-validation-accuracy reporting).

CPU budget adaptations (recorded in EXPERIMENTS.md): windows are
subsampled 2× in time (540 → 270 steps), epochs are capped, and the
"hidden size" axis is kept at the paper's values so the overfitting
collapse of the h=512 variants can be observed.
"""

import os

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.baselines import run_rnn_baseline
from repro.data.stats import format_table

#: Table VI, paper values (%): start, middle, random.
PAPER_TABLE6 = {
    "LSTM (h=128)": (82.57, 92.09, 90.81),
    "LSTM (h=128, 2-layer)": (80.51, 91.90, 90.52),
    "CNN-LSTM (h=128)": (82.65, 89.90, 90.55),
    "CNN-LSTM (h=256)": (67.60, 89.36, 88.61),
    "CNN-LSTM (h=512)": (64.45, 65.67, 73.80),
    "CNN-LSTM (h=512, small kernel)": (66.26, 71.47, 75.21),
}

DATASETS = ("60-start-1", "60-middle-1", "60-random-1")

TIME_STRIDE = int(os.environ.get("REPRO_BENCH_RNN_STRIDE", "2"))
MAX_EPOCHS = int(os.environ.get("REPRO_BENCH_RNN_EPOCHS", "12"))

VARIANTS = (
    ("LSTM (h=128)", dict(variant="lstm", hidden_size=128, n_layers=1)),
    ("LSTM (h=128, 2-layer)", dict(variant="lstm", hidden_size=128, n_layers=2)),
    ("CNN-LSTM (h=128)", dict(variant="cnn_lstm", hidden_size=128,
                              kernel_size=7, stride=2)),
    ("CNN-LSTM (h=256)", dict(variant="cnn_lstm", hidden_size=256,
                              kernel_size=7, stride=2)),
    ("CNN-LSTM (h=512)", dict(variant="cnn_lstm", hidden_size=512,
                              kernel_size=7, stride=2)),
    ("CNN-LSTM (h=512, small kernel)", dict(variant="cnn_lstm", hidden_size=512,
                                            kernel_size=3, stride=1)),
)


@pytest.fixture(scope="module")
def table6(challenge_smr):
    results: dict[str, dict[str, dict]] = {}
    for label, kwargs in VARIANTS:
        results[label] = {}
        for name in DATASETS:
            results[label][name] = run_rnn_baseline(
                challenge_smr, dataset_name=name,
                max_epochs=MAX_EPOCHS, patience=max(4, MAX_EPOCHS // 2),
                batch_size=32, time_stride=TIME_STRIDE, seed=0,
                **kwargs,
            )
    return results


def test_table6_rnn_accuracy(benchmark, record_result, challenge_smr, table6):
    benchmark.pedantic(
        lambda: run_rnn_baseline(
            challenge_smr, "lstm", "60-middle-1", hidden_size=32,
            max_epochs=1, patience=1, time_stride=4,
        ),
        rounds=1, iterations=1,
    )

    rows = []
    for label, _ in VARIANTS:
        row = {"Model": label}
        for name, col in zip(DATASETS, ("Start", "Middle", "Random")):
            row[col] = f"{100 * table6[label][name]['test_accuracy']:.2f}"
        row["epochs"] = table6[label][DATASETS[0]]["epochs_run"]
        row["fit (s)"] = f"{sum(table6[label][n]['fit_seconds'] for n in DATASETS):.0f}"
        rows.append(row)
        paper = PAPER_TABLE6[label]
        rows.append({"Model": "  paper:", "Start": f"{paper[0]:.2f}",
                     "Middle": f"{paper[1]:.2f}", "Random": f"{paper[2]:.2f}"})

    report = [
        f"E6 / Table VI — RNN test accuracy (%) at trials_scale={BENCH_SCALE}, "
        f"time_stride={TIME_STRIDE}, max_epochs={MAX_EPOCHS} "
        "(paper: full scale, up to 1000 epochs on V100s)",
        format_table(rows),
    ]
    record_result("E6_table6_rnn", "\n".join(report))

    # --- Shape assertions -------------------------------------------------
    acc = {label: {n: r["test_accuracy"] for n, r in per.items()}
           for label, per in table6.items()}
    # Start is the hardest dataset for the small (well-fitting) models.
    for label in ("LSTM (h=128)", "LSTM (h=128, 2-layer)", "CNN-LSTM (h=128)"):
        assert acc[label]["60-start-1"] <= acc[label]["60-middle-1"] + 0.02, label
    # All models clear 26-class chance by a wide margin somewhere.
    for label in acc:
        assert max(acc[label].values()) > 0.25, label
    # Table VI's h=512 rows collapse from *overfitting* after long
    # training; under this bench's epoch cap the collapse cannot fully
    # develop (recorded as a deviation in EXPERIMENTS.md).  What must still
    # hold: quadrupling capacity buys no decisive gain over h=128.
    mean = lambda label: sum(acc[label].values()) / len(DATASETS)
    assert mean("CNN-LSTM (h=512)") < mean("CNN-LSTM (h=128)") + 0.08
