"""E8 (extension) — Section VI future work: the ConvLSTM architecture.

"We believe that the ConvLSTM architecture is promising in its ability to
capture convolutional features in both the input-to-state and
state-to-state domains."  This bench trains the ConvLSTM classifier with
the Section V recipe and compares it against the BiLSTM baseline on the
60-middle-1 dataset.
"""

import time

import numpy as np

from benchmarks.conftest import BENCH_SCALE
from repro.ml.preprocessing import TimeSeriesStandardScaler
from repro.models.convlstm_model import ConvLSTMClassifier
from repro.models.lstm_baseline import LSTMClassifier
from repro.nn import Adam, CyclicCosineLR, NLLLoss, Trainer

DATASET = "60-middle-1"
TIME_STRIDE = 2
MAX_EPOCHS = 12


def _train(model, X_train, y_train, X_test, y_test, seed=0):
    opt = Adam(model.parameters(), lr=2e-3)
    trainer = Trainer(
        model, opt, NLLLoss(), scheduler=CyclicCosineLR(opt, cycle_len=6),
        batch_size=32, max_epochs=MAX_EPOCHS, patience=MAX_EPOCHS,
        shuffle_rng=seed,
    )
    tic = time.perf_counter()
    history = trainer.fit(X_train, y_train, X_test, y_test)
    return history.best_val_accuracy, time.perf_counter() - tic


def test_convlstm_future_work(benchmark, record_result, challenge_smr):
    ds = challenge_smr.dataset(DATASET)
    scaler = TimeSeriesStandardScaler()
    X_train = scaler.fit_transform(ds.X_train).astype(np.float32)[:, ::TIME_STRIDE]
    X_test = scaler.transform(ds.X_test).astype(np.float32)[:, ::TIME_STRIDE]
    seq_len = X_train.shape[1]
    n_classes = 26

    convlstm = ConvLSTMClassifier(
        n_sensors=7, seq_len=seq_len, n_classes=n_classes,
        n_segments=12, hidden_channels=24, seed=0,
    )
    acc_convlstm, t_convlstm = benchmark.pedantic(
        lambda: _train(convlstm, X_train, ds.y_train, X_test, ds.y_test),
        rounds=1, iterations=1,
    )

    lstm = LSTMClassifier(n_sensors=7, seq_len=seq_len, n_classes=n_classes,
                          hidden_size=128, seed=0)
    acc_lstm, t_lstm = _train(lstm, X_train, ds.y_train, X_test, ds.y_test)

    report = [
        f"E8 (extension) / Section VI — ConvLSTM vs BiLSTM on {DATASET} "
        f"(trials_scale={BENCH_SCALE}, stride={TIME_STRIDE}, "
        f"{MAX_EPOCHS} epochs)",
        f"  ConvLSTM (12 segments, 24 channels): "
        f"{acc_convlstm:.2%} in {t_convlstm:.0f}s "
        f"({convlstm.n_parameters():,} params)",
        f"  BiLSTM (h=128):                      "
        f"{acc_lstm:.2%} in {t_lstm:.0f}s "
        f"({lstm.n_parameters():,} params)",
        "  (paper offers no ConvLSTM numbers — it is proposed as future "
        "work; this bench realizes it)",
    ]
    record_result("E8_extension_convlstm", "\n".join(report))

    # Both models must clear chance decisively; ConvLSTM should be within
    # striking distance of the LSTM baseline with ~10x fewer recurrent steps.
    assert acc_convlstm > 0.25
    assert acc_lstm > 0.25
    assert acc_convlstm > acc_lstm - 0.25
