"""A5 (extension ablation) — resampling as a data multiplier.

Section III-C asks whether the dataset's limited size "can be dealt with
using regularization or resampling techniques".  Each labelled trial is
minutes long but the challenge uses one 60-second window per trial; this
ablation draws k independent random windows per *training* trial (test
windows untouched) and measures the accuracy gain.
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, bench_sim_config
from repro.data.augment import multi_window_resample
from repro.data.labelled import build_labelled_dataset
from repro.data.splits import train_test_split_by_group
from repro.data.stats import format_table
from repro.data.windows import WindowMode, extract_window, window_offsets
from repro.ml.ensemble import RandomForestClassifier
from repro.ml.preprocessing import TimeSeriesStandardScaler, upper_triangle_covariance

WINDOW = 540


def test_resampling_ablation(benchmark, record_result):
    labelled = build_labelled_dataset(bench_sim_config()).eligible(WINDOW)
    train_idx, test_idx = train_test_split_by_group(
        labelled.labels(), labelled.job_ids(), 0.2, rng=0
    )

    # Fixed test windows (one random window per test trial).
    rng = np.random.default_rng(1)
    test_offsets = window_offsets(
        labelled.lengths()[test_idx], WINDOW, WindowMode.RANDOM, rng
    )
    X_test = np.stack([
        extract_window(labelled.trials[int(i)].series, int(o), WINDOW)
        for i, o in zip(test_idx, test_offsets)
    ]).astype(np.float32)
    y_test = labelled.labels()[test_idx]

    rows = []
    accs = {}

    def evaluate(k: int) -> float:
        X_train, y_train = multi_window_resample(
            labelled, train_idx, windows_per_trial=k, window=WINDOW, rng=k
        )
        scaler = TimeSeriesStandardScaler().fit(X_train)
        Ftr = upper_triangle_covariance(scaler.transform(X_train))
        Fte = upper_triangle_covariance(scaler.transform(X_test))
        clf = RandomForestClassifier(n_estimators=100, max_features=None,
                                     random_state=0).fit(Ftr, y_train)
        return clf.score(Fte, y_test)

    accs[1] = benchmark.pedantic(lambda: evaluate(1), rounds=1, iterations=1)
    for k in (2, 4):
        accs[k] = evaluate(k)
    for k, acc in accs.items():
        rows.append({
            "windows/trial": k,
            "train windows": len(train_idx) * k,
            "accuracy %": f"{100 * acc:.2f}",
        })

    report = [
        f"A5 (extension) — multi-window resampling "
        f"(RF Cov., trials_scale={BENCH_SCALE})",
        format_table(rows),
        "",
        "  (Section III-C: 'Can this be dealt with using regularization or "
        "resampling techniques?')",
    ]
    record_result("A5_resampling", "\n".join(report))

    # Resampling adds information: 4 windows/trial must not hurt, and in
    # the typical run it helps by several points.
    assert accs[4] >= accs[1] - 0.03
