"""E1 — Table I and Tables VII–IX: labelled-dataset composition.

Regenerates the architecture/job-count inventory from a simulated release
and checks it against the paper's composition (scaled).
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, bench_sim_config
from repro.data.labelled import build_labelled_dataset
from repro.data.stats import architecture_job_counts, family_totals, format_table
from repro.simcluster.architectures import ARCHITECTURES

PAPER_FAMILY_TOTALS = {
    "VGG": 560, "ResNet": 463, "Inception": 484,
    "U-Net": 1431, "NLP": 361, "GNN": 131,
}


def test_table1_family_totals(benchmark, record_result):
    labelled = benchmark.pedantic(
        lambda: build_labelled_dataset(bench_sim_config()),
        rounds=1, iterations=1,
    )
    totals = family_totals(labelled)
    counts = architecture_job_counts(labelled)

    rows = [
        {"family": fam, "jobs(ours)": totals[fam],
         "jobs(paper)": PAPER_FAMILY_TOTALS[fam],
         "expected(scaled)": round(PAPER_FAMILY_TOTALS[fam] * BENCH_SCALE)}
        for fam in PAPER_FAMILY_TOTALS
    ]
    report = [
        f"E1 / Table I — architecture family totals "
        f"(trials_scale={BENCH_SCALE})",
        format_table(rows),
        "",
        "Per-class inventory (Tables VII-IX analogue):",
        format_table([
            {"class": name, "jobs": e["jobs"], "trials": e["trials"],
             "paper_jobs": e["paper_jobs"]}
            for name, e in counts.items()
        ]),
        f"",
        f"total jobs: {labelled.n_jobs()}  "
        f"total labelled GPU series (trials): {len(labelled)}",
    ]
    record_result("E1_table1_architectures", "\n".join(report))

    # Shape checks: 26 classes present; composition proportional to the
    # paper's (within the min-jobs floor); trials >= jobs (multi-GPU).
    assert len(counts) == 26
    assert all(e["jobs"] > 0 for e in counts.values())
    assert len(labelled) >= labelled.n_jobs()
    # U-Net is the largest family in the paper; it must dominate here too
    # at any scale where the floor isn't binding.
    assert totals["U-Net"] == max(totals.values())
    # Proportionality: per-class jobs track paper counts.
    ours = np.array([counts[a.name]["jobs"] for a in ARCHITECTURES],
                    dtype=float)
    paper = np.array([a.paper_job_count for a in ARCHITECTURES], dtype=float)
    corr = np.corrcoef(ours, paper)[0, 1]
    # The min-jobs-per-class floor intentionally flattens rare classes at
    # small scales, so demand strong but not perfect proportionality.
    assert corr > 0.9
