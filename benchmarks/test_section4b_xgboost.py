"""E5 + A3 — Section IV-B: XGBoost on covariance features.

Regenerates the in-text results: test accuracy on 60-random-1 after 40
boosting rounds under a γ/α/λ grid (paper: 88.47 %), the round-by-round
plateau / train-set overfit, and the gain-ranked covariance feature
importances whose paper top-3 are

    1. cov(GPU % utilization, GPU-memory % utilization)
    2. var(GPU % utilization)
    3. var(power draw)

(The paper's wording "GPU % Utilization and CPU % Utilization" refers to
the two utilization channels of Table III — the GPU datasets contain no
CPU sensor.)
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE
from repro.core.baselines import run_xgboost_baseline

PAPER_ACCURACY = 0.8847
PAPER_ROUNDS = 40
PAPER_TOP3 = (
    "cov(utilization_gpu_pct, utilization_memory_pct)",
    "var(utilization_gpu_pct)",
    "var(power_draw_W)",
)


def test_xgboost_accuracy_plateau_importance(benchmark, record_result, challenge):
    def run():
        return run_xgboost_baseline(
            challenge, "60-random-1",
            cv=3,  # paper: 5-fold
            grid={
                "clf__gamma": [0.0, 0.5],
                "clf__reg_alpha": [0.0, 0.1],
                "clf__reg_lambda": [1.0, 5.0],
            },
            n_estimators=PAPER_ROUNDS,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    train_curve = result["train_curve"]
    test_curve = result["test_curve"]
    curve_lines = [
        f"  round {r + 1:>3d}: train {train_curve[r]:.3f}  test {test_curve[r]:.3f}"
        for r in (0, 4, 9, 19, 29, 39)
    ]
    importance_lines = [
        f"  {rank + 1:>2d}. {value:6.3f}  {name}"
        for rank, (name, value) in enumerate(result["feature_importance"][:8])
    ]
    report = [
        f"E5 / Section IV-B — XGBoost + covariance on 60-random-1 "
        f"(trials_scale={BENCH_SCALE})",
        f"  test accuracy: {result['test_accuracy']:.2%} "
        f"(paper: {PAPER_ACCURACY:.2%} at full scale)",
        f"  best regularization: {result['best_params']}",
        "",
        "A3 — boosting-round learning curve (overfit/plateau):",
        *curve_lines,
        "",
        "Feature importance (gain), top 8 "
        f"(paper top-3: {', '.join(PAPER_TOP3)}):",
        *importance_lines,
    ]
    record_result("E5_section4b_xgboost", "\n".join(report))

    # --- Shape assertions -------------------------------------------------
    # Far above 26-class chance; reduced scale sits below the paper level.
    assert result["test_accuracy"] > 0.45
    # Overfit: training accuracy far above test by the final round (paper:
    # "the training set error is very close to zero" — with the winning
    # regularization from the grid, ours caps slightly below 1).
    assert train_curve[-1] > 0.9
    assert train_curve[-1] > result["test_accuracy"] + 0.1
    # Plateau: the last 10 rounds move test accuracy by little compared to
    # the first 10 rounds' gains.
    early_gain = test_curve[9] - test_curve[0]
    late_gain = abs(test_curve[-1] - test_curve[-10])
    assert late_gain < max(0.05, 0.5 * max(early_gain, 1e-9))
    # Importance shape: utilization-related second-order features dominate.
    top8 = [name for name, _ in result["feature_importance"][:8]]
    assert any("utilization_gpu_pct" in n for n in top8)
    assert any(n == "var(power_draw_W)" for n in top8) or any(
        "power_draw_W" in n for n in top8
    )
    # Importances normalized and ranked.
    values = np.array([v for _, v in result["feature_importance"]])
    assert values.sum() > 0.99
    assert np.all(np.diff(values) <= 1e-12)
