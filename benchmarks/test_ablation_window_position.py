"""A2 — ablation of window position: why the start dataset is hardest.

The paper attributes the start dataset's lower accuracy to class-generic
data-loading/preprocessing at job start.  Our simulator encodes that
mechanism explicitly (the STARTUP phase is shared across classes), so this
ablation both reproduces the accuracy ordering across all seven datasets
and verifies the mechanism directly: within start windows the early
samples are near-idle for every class.
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE
from repro.data.challenge import CHALLENGE_DATASET_NAMES
from repro.data.stats import format_table
from repro.models import make_rf_cov


def test_window_position_ablation(benchmark, record_result, challenge):
    def evaluate(name):
        return challenge.evaluate(
            make_rf_cov(n_estimators=100, max_features=None), name
        )["accuracy"]

    acc = {}
    for name in CHALLENGE_DATASET_NAMES:
        if name == "60-middle-1":
            acc[name] = benchmark.pedantic(
                lambda: evaluate(name), rounds=1, iterations=1)
        else:
            acc[name] = evaluate(name)

    # Mechanism check: mean GPU utilization in the first 10 seconds of
    # start windows vs middle windows, across classes.
    start_ds = challenge.dataset("60-start-1")
    middle_ds = challenge.dataset("60-middle-1")
    early = slice(0, 90)  # first 10 s at 9 Hz
    start_util = float(start_ds.X_train[:, early, 0].mean())
    middle_util = float(middle_ds.X_train[:, early, 0].mean())

    rows = [{"dataset": n, "RF Cov. accuracy %": f"{100 * acc[n]:.2f}"}
            for n in CHALLENGE_DATASET_NAMES]
    report = [
        f"A2 — window-position ablation (trials_scale={BENCH_SCALE})",
        format_table(rows),
        "",
        f"mean GPU utilization, first 10 s of window: "
        f"start={start_util:.1f}% vs middle={middle_util:.1f}% — start "
        "windows open in the class-generic startup phase.",
    ]
    record_result("A2_window_position", "\n".join(report))

    randoms = [acc[f"60-random-{i}"] for i in range(1, 6)]
    # Per-dataset binomial sampling noise at this test-set size.
    n_test = challenge.dataset("60-random-1").n_test
    noise = float(np.sqrt(0.25 / n_test))
    # Ordering: start < random mean <= middle (paper's Table V pattern).
    assert acc["60-start-1"] < np.mean(randoms)
    assert acc["60-start-1"] < acc["60-middle-1"]
    assert np.mean(randoms) <= acc["60-middle-1"] + 2 * noise
    # Mechanism: start windows begin near idle, middle windows do not.
    assert start_util < 0.5 * middle_util
    # The five random datasets agree with each other (paper: R1..R5 within
    # ~1 point) up to test-set sampling noise.
    assert np.std(randoms) < max(0.06, 2 * noise)
