"""A1 — ablation of the paper's central preprocessing choice: PCA dimension
sweep (the paper's 28/64/256/512 grid) vs the covariance reduction, in both
accuracy and cost.

Substantiates Section IV-A's observation that "the time complexity for the
covariance dataset, with a feature space in R^28, was significantly less
than the PCA datasets with larger feature spaces" while staying
competitive or better for the forest.
"""

import time

import numpy as np

from benchmarks.conftest import BENCH_SCALE
from repro.data.stats import format_table
from repro.ml.ensemble import RandomForestClassifier
from repro.ml.preprocessing import (
    Flatten3D,
    PCA,
    TimeSeriesStandardScaler,
    upper_triangle_covariance,
)

DATASET = "60-random-1"


def test_reduction_ablation(benchmark, record_result, challenge):
    ds = challenge.dataset(DATASET)
    scaler = TimeSeriesStandardScaler()
    Xtr3 = scaler.fit_transform(ds.X_train)
    Xte3 = scaler.transform(ds.X_test)
    flat = Flatten3D().fit(Xtr3)
    Xtr_flat, Xte_flat = flat.transform(Xtr3), flat.transform(Xte3)

    rows = []

    def eval_features(label, Ftr, Fte, reduce_seconds):
        tic = time.perf_counter()
        clf = RandomForestClassifier(n_estimators=100, max_features=None,
                                     random_state=0).fit(Ftr, ds.y_train)
        fit_s = time.perf_counter() - tic
        acc = clf.score(Fte, ds.y_test)
        rows.append({
            "features": label, "dims": Ftr.shape[1],
            "reduce (s)": f"{reduce_seconds:.2f}",
            "fit (s)": f"{fit_s:.1f}",
            "accuracy %": f"{100 * acc:.2f}",
        })
        return acc

    # Covariance pathway (timed as the benchmark unit).
    def cov_path():
        return upper_triangle_covariance(Xtr3), upper_triangle_covariance(Xte3)

    tic = time.perf_counter()
    Ftr_cov, Fte_cov = benchmark.pedantic(cov_path, rounds=1, iterations=1)
    cov_seconds = time.perf_counter() - tic
    acc_cov = eval_features("covariance", Ftr_cov, Fte_cov, cov_seconds)

    # PCA pathway at the paper's dimension grid (capped by sample count).
    cap = min(Xtr_flat.shape)
    accs_pca = {}
    for k in (28, 64, 256, 512):
        if k > cap:
            continue
        tic = time.perf_counter()
        pca = PCA(n_components=k).fit(Xtr_flat)
        Ftr, Fte = pca.transform(Xtr_flat), pca.transform(Xte_flat)
        pca_seconds = time.perf_counter() - tic
        accs_pca[k] = eval_features(f"PCA k={k}", Ftr, Fte, pca_seconds)

    report = [
        f"A1 — reduction ablation on {DATASET} "
        f"(RF 100 trees, trials_scale={BENCH_SCALE})",
        format_table(rows),
        "",
        "covariance reduces R^{540x7} -> R^28 (135x fewer dims than the "
        "3780-dim flattened input PCA starts from)",
    ]
    record_result("A1_reduction_ablation", "\n".join(report))

    # Covariance is competitive with the best PCA setting (paper: better
    # for RF) while using far fewer dimensions.
    assert accs_pca, "no PCA dimension fit under the sample-count cap"
    assert acc_cov >= max(accs_pca.values()) - 0.08
    # Reduction cost: covariance features are cheaper to compute than any
    # PCA fit at the paper's dimensions.
    assert cov_seconds < 5.0
