"""E4 — Table V: SVM and RF test accuracy under both reductions, all seven
datasets.

The paper's protocol is a 10-fold grid search per cell; at bench scale we
evaluate each model with strong fixed hyperparameters on all seven datasets
(the grid-search protocol itself is exercised on one dataset in
``test_grid_search_protocol``), and we report fit/predict timing to
substantiate the paper's point that the covariance reduction's R^28 feature
space is drastically cheaper than PCA's.

Shape targets (see DESIGN.md): the start dataset is the hardest and middle
the easiest for every model; RF-Cov beats RF-PCA; SVM-PCA beats SVM-Cov on
the start dataset.  Absolute levels sit below the paper's because bench
scale is ~1/10 of the release (see EXPERIMENTS.md).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.baselines import run_traditional_baseline
from repro.data.challenge import CHALLENGE_DATASET_NAMES
from repro.data.stats import format_table
from repro.models import make_rf_cov, make_rf_pca, make_svm_cov, make_svm_pca

#: Table V, paper values (%), columns: start, middle, R1..R5.
PAPER_TABLE5 = {
    "SVM PCA": (82.13, 80.84, 76.62, 75.32, 76.78, 75.29, 75.46),
    "SVM Cov.": (67.24, 73.21, 71.66, 71.32, 71.05, 70.55, 70.61),
    "RF PCA": (83.17, 89.76, 85.58, 86.69, 86.51, 86.31, 86.42),
    "RF Cov.": (81.80, 93.02, 90.05, 90.64, 90.01, 90.73, 90.90),
}

MODELS = {
    "SVM PCA": lambda: make_svm_pca(C=10.0, n_components=64),
    "SVM Cov.": lambda: make_svm_cov(C=10.0),
    "RF PCA": lambda: make_rf_pca(n_estimators=100, n_components=64,
                                  max_features=None),
    "RF Cov.": lambda: make_rf_cov(n_estimators=100, max_features=None),
}


@pytest.fixture(scope="module")
def table5(challenge):
    """Accuracy and timing for all 4 models x 7 datasets."""
    acc: dict[str, dict[str, float]] = {}
    fit_time: dict[str, float] = {}
    for label, factory in MODELS.items():
        acc[label] = {}
        total_fit = 0.0
        for name in CHALLENGE_DATASET_NAMES:
            ds = challenge.dataset(name)
            model = factory()
            tic = time.perf_counter()
            model.fit(ds.X_train, ds.y_train)
            total_fit += time.perf_counter() - tic
            acc[label][name] = model.score(ds.X_test, ds.y_test)
        fit_time[label] = total_fit / len(CHALLENGE_DATASET_NAMES)
    return acc, fit_time


def test_table5_accuracy_matrix(benchmark, record_result, challenge, table5):
    acc, fit_time = table5
    benchmark.pedantic(
        lambda: MODELS["RF Cov."]().fit(
            challenge.dataset("60-middle-1").X_train,
            challenge.dataset("60-middle-1").y_train,
        ),
        rounds=1, iterations=1,
    )

    short = {"60-start-1": "Start", "60-middle-1": "Middle",
             **{f"60-random-{i}": f"R{i}" for i in range(1, 6)}}
    rows = []
    for label in MODELS:
        row = {"Model": label}
        for name in CHALLENGE_DATASET_NAMES:
            row[short[name]] = f"{100 * acc[label][name]:.2f}"
        row["mean fit (s)"] = f"{fit_time[label]:.1f}"
        rows.append(row)
        paper_row = {"Model": f"  paper:"}
        for (name, col) in short.items():
            paper_row[col] = f"{PAPER_TABLE5[label][list(short).index(name)]:.2f}"
        rows.append(paper_row)

    report = [
        f"E4 / Table V — SVM and RF test accuracy (%) at "
        f"trials_scale={BENCH_SCALE} "
        f"(n_train={challenge.dataset('60-start-1').n_train}; "
        "paper rows are at full 14.5k-trial scale)",
        format_table(rows),
    ]
    record_result("E4_table5_svm_rf", "\n".join(report))

    # --- Shape assertions -------------------------------------------------
    start, middle = "60-start-1", "60-middle-1"
    randoms = [f"60-random-{i}" for i in range(1, 6)]
    for label in MODELS:
        # Start is the hardest window position; middle the easiest.
        assert acc[label][start] < acc[label][middle], label
        mean_random = np.mean([acc[label][r] for r in randoms])
        assert acc[label][start] < mean_random + 0.02, label
    # Covariance reduction helps RF (paper's headline observation).
    for r in randoms + [middle]:
        assert acc["RF Cov."][r] >= acc["RF PCA"][r] - 0.03, r
    # On the start dataset SVM-PCA clearly beats SVM-Cov (paper: 82 vs 67).
    assert acc["SVM PCA"][start] > acc["SVM Cov."][start] - 0.02
    # Covariance pathway is far cheaper to fit than the PCA pathway.
    assert fit_time["SVM Cov."] < fit_time["SVM PCA"]
    assert fit_time["RF Cov."] < fit_time["RF PCA"]


def test_grid_search_protocol(benchmark, record_result, challenge):
    """The paper's model-selection protocol on one dataset: k-fold grid
    search over the published hyperparameter values, then test scoring."""

    def run():
        return run_traditional_baseline(
            challenge, "rf_cov", "60-random-1",
            cv=3,                       # paper: 10-fold
            rf_trees=(50, 100),         # paper: {50, 100, 250}
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = [
        "E4b — grid-search protocol demonstration (RF Cov. on 60-random-1)",
        f"  best params: {result['best_params']}",
        f"  cv accuracy: {result['cv_accuracy']:.2%}",
        f"  test accuracy: {result['test_accuracy']:.2%}",
        f"  grid-search wall time: {result['fit_seconds']:.1f}s",
    ]
    record_result("E4b_grid_search_protocol", "\n".join(report))
    assert result["test_accuracy"] > 0.4
    assert abs(result["cv_accuracy"] - result["test_accuracy"]) < 0.25
