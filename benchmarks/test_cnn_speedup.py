"""E7 — Section V-B in-text claim: the CNN front end speeds LSTM training
~8× by shrinking the sequence the LSTM must unroll.

Measures one training step (forward + backward + update) of the plain
BiLSTM baseline vs the CNN-LSTM on identical full-length 540-sample
windows.
"""

import time

import numpy as np

from repro.models import CNNLSTMClassifier, LSTMClassifier
from repro.nn import Adam, NLLLoss, Tensor

SEQ_LEN = 540
BATCH = 32


def _step_time(model, X, y, repeats=3) -> float:
    opt = Adam(model.parameters(), lr=1e-3)
    loss_fn = NLLLoss()
    model.train()
    # Warmup step (first call pays einsum-path and allocation setup).
    out = model(Tensor(X))
    loss = loss_fn(out, y)
    opt.zero_grad(); loss.backward(); opt.step()
    tic = time.perf_counter()
    for _ in range(repeats):
        out = model(Tensor(X))
        loss = loss_fn(out, y)
        opt.zero_grad()
        loss.backward()
        opt.step()
    return (time.perf_counter() - tic) / repeats


def test_cnn_frontend_speedup(benchmark, record_result):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(BATCH, SEQ_LEN, 7)).astype(np.float32)
    y = rng.integers(0, 26, BATCH)

    lstm = LSTMClassifier(hidden_size=128, seq_len=SEQ_LEN, seed=0)
    cnn_lstm = CNNLSTMClassifier(hidden_size=128, seq_len=SEQ_LEN,
                                 kernel_size=7, stride=2, seed=0)

    t_lstm = _step_time(lstm, X, y)
    t_cnn = benchmark.pedantic(
        lambda: _step_time(cnn_lstm, X, y), rounds=1, iterations=1
    )
    speedup = t_lstm / t_cnn

    report = [
        "E7 / Section V-B — CNN front-end training speed-up",
        f"  BiLSTM (h=128), T={SEQ_LEN}: {t_lstm * 1e3:.0f} ms / step "
        f"(batch {BATCH})",
        f"  CNN-LSTM (h=128), LSTM T'={cnn_lstm.lstm_seq_len}: "
        f"{t_cnn * 1e3:.0f} ms / step",
        f"  speed-up: {speedup:.1f}x (paper: ~8x, from the same sequence-"
        "shortening mechanism)",
    ]
    record_result("E7_cnn_speedup", "\n".join(report))

    # The conv stack shrinks 540 steps to ~65 (8.3x fewer LSTM steps).
    assert cnn_lstm.lstm_seq_len < SEQ_LEN / 7
    # The measured wall-clock speed-up has the same order of magnitude.
    assert speedup > 3.0
