"""A4 (extension ablation) — importance-guided feature selection.

Section III-C poses: "determining feature importance may allow the
exclusion of particular features without affecting classification
accuracy".  This ablation ranks the 28 covariance features by boosting
gain (the Section IV-B analysis) and sweeps the top-k subset, showing how
few second-order features carry the bulk of the signal.
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE
from repro.data.stats import format_table
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.ensemble import RandomForestClassifier
from repro.ml.preprocessing import (
    TimeSeriesStandardScaler,
    covariance_feature_names,
    upper_triangle_covariance,
)

DATASET = "60-random-1"


def test_feature_selection_ablation(benchmark, record_result, challenge):
    ds = challenge.dataset(DATASET)
    scaler = TimeSeriesStandardScaler()
    Ftr = upper_triangle_covariance(scaler.fit_transform(ds.X_train))
    Fte = upper_triangle_covariance(scaler.transform(ds.X_test))

    # Rank features by boosting gain.
    ranker = GradientBoostingClassifier(n_estimators=15, max_depth=4,
                                        random_state=0)
    benchmark.pedantic(lambda: ranker.fit(Ftr, ds.y_train),
                       rounds=1, iterations=1)
    order = np.argsort(-ranker.feature_importances_)
    names = covariance_feature_names()

    rows = []
    accs = {}
    for k in (2, 4, 8, 16, 28):
        cols = order[:k]
        clf = RandomForestClassifier(n_estimators=100, max_features=None,
                                     random_state=0)
        clf.fit(Ftr[:, cols], ds.y_train)
        accs[k] = clf.score(Fte[:, cols], ds.y_test)
        rows.append({
            "top-k features": k,
            "accuracy %": f"{100 * accs[k]:.2f}",
            "k-th feature": names[order[k - 1]],
        })

    report = [
        f"A4 (extension) — importance-guided covariance-feature selection "
        f"on {DATASET} (trials_scale={BENCH_SCALE})",
        format_table(rows),
    ]
    record_result("A4_feature_selection", "\n".join(report))

    # Accuracy saturates well before all 28 features: the top half must
    # recover (nearly) all of the full feature set's accuracy.
    assert accs[16] >= accs[28] - 0.05
    # A handful of features already carries most of the signal.
    assert accs[8] >= 0.6 * accs[28]
    # And using everything beats the 2-feature straw man.
    assert accs[28] > accs[2]
