"""Shared benchmark fixtures.

The bench suite regenerates every table and in-text quantitative claim of
the paper at a reduced scale (the full 14,590-trial scale is a
``trials_scale=1.0`` flag away but takes hours on one core).  Scale is
controlled by ``REPRO_BENCH_SCALE`` (default 0.1 → ~420 training trials).

Each bench prints a paper-formatted table next to the paper's reported
numbers and appends it to ``benchmarks/results/<experiment>.txt`` so the
EXPERIMENTS.md paper-vs-measured index can be regenerated from artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import SimulationConfig, WorkloadClassificationChallenge
from repro.data.challenge import CHALLENGE_DATASET_NAMES

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2022"))

RESULTS_DIR = Path(__file__).parent / "results"


def bench_sim_config() -> SimulationConfig:
    return SimulationConfig(
        seed=BENCH_SEED,
        trials_scale=BENCH_SCALE,
        min_jobs_per_class=6,
        startup_mean_s=28.0,
    )


@pytest.fixture(scope="session")
def challenge() -> WorkloadClassificationChallenge:
    """All seven Table IV datasets at bench scale."""
    return WorkloadClassificationChallenge.from_simulation(
        bench_sim_config(), names=CHALLENGE_DATASET_NAMES
    )


@pytest.fixture(scope="session")
def challenge_smr(challenge) -> WorkloadClassificationChallenge:
    """The start/middle/random-1 subset (what the paper's RNN section uses)."""
    names = ("60-start-1", "60-middle-1", "60-random-1")
    return WorkloadClassificationChallenge(
        {n: challenge.dataset(n) for n in names}
    )


@pytest.fixture(scope="session")
def record_result():
    """Append a named experiment report to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(experiment: str, text: str) -> None:
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}")

    return _record
