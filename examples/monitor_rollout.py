"""Close the deployment loop: drift detection, shadow eval, canary rollout.

``serve_fleet.py`` ends with a model serving a fleet; this walkthrough
shows what keeps that model honest once the fleet underneath it changes.
Part one exercises the monitoring primitives directly — inject a sensor
gain ramp into a telemetry stream and watch a
:class:`repro.monitor.SensorDriftDetector` catch it.  Part two runs the
whole control loop via :func:`repro.monitor.run_monitor_bench`: train a
champion and a challenger, replay a fleet with platform drift injected
mid-stream, page on the fleet-wide drift alert, shadow-evaluate the
challenger on live micro-batches, open a canary cohort, and flip the
registry's active pointer on promotion — then repeat with a broken
challenger and watch the same gates roll it back::

    python examples/monitor_rollout.py
"""

import numpy as np

from repro.monitor import (
    DriftInjection,
    MonitorBenchConfig,
    SensorDriftDetector,
    inject_series,
    run_monitor_bench,
)


def drift_primitives_demo() -> None:
    """One detector, one stream, one injected gain ramp."""
    rng = np.random.default_rng(7)
    # A plausible steady-state stream: fixed operating point + sensor noise.
    level = np.array([55.0, 30.0, 20000.0, 12000.0, 55.0, 60.0, 180.0])
    noise = np.array([8.0, 5.0, 300.0, 300.0, 0.5, 0.5, 20.0])
    series = level + rng.normal(size=(3000, 7)) * noise

    injection = DriftInjection(start_sample=1500, ramp_samples=270,
                               gain=1.25, sensors=(0, 6))
    drifted = inject_series(series, injection)

    for name, stream in (("clean", series), ("drifted", drifted)):
        detector = SensorDriftDetector(session_id=name)
        events = detector.update_many(stream)
        if not events:
            print(f"{name:>8}: no drift events (as it should be)")
            continue
        first = detector.first_event_sample
        print(f"{name:>8}: {len(events)} events, first on sensor "
              f"{events[0].sensor!r} at sample {first} "
              f"({first - injection.start_sample} after injection)")


def main() -> None:
    """Run the primitive demo, then both end-to-end rollout scenarios."""
    print("== drift detection primitives ==")
    drift_primitives_demo()

    # Small fleet so the whole loop runs in seconds; `python -m repro
    # monitor-bench` exposes every one of these knobs as a flag.
    base = dict(scale=0.01, n_jobs=10, trees=10, seed=2022)

    print("\n== good challenger under injected platform drift ==")
    report = run_monitor_bench(MonitorBenchConfig(**base))
    print(report.format())

    print("\n== label-permuted challenger: gates must hold ==")
    report = run_monitor_bench(
        MonitorBenchConfig(challenger="bad", **base))
    print(report.format())


if __name__ == "__main__":
    main()
