"""Generate and persist a challenge release in the official npz layout.

Produces the seven Table IV datasets as ``<name>.npz`` archives, each with
``X_train, y_train, model_train, X_test, y_test, model_test`` — the exact
file layout of the dcc.mit.edu release — plus the scheduler-log summary::

    python examples/release_challenge_data.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import SimulationConfig
from repro.data import (
    build_challenge_suite,
    challenge_suite_table,
    family_totals,
    save_challenge_suite,
)
from repro.data.labelled import trials_from_jobs
from repro.data.stats import architecture_job_counts, format_table
from repro.simcluster import ClusterSimulator


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("challenge_release")

    config = SimulationConfig(seed=2022, trials_scale=0.04, min_jobs_per_class=4)
    simulator = ClusterSimulator(config)
    jobs, log = simulator.generate()
    labelled = trials_from_jobs(jobs)

    print(f"simulated {len(jobs)} jobs -> {log.total_gpu_series()} labelled "
          f"GPU series (multi-GPU jobs repeat the label, as in the release)\n")

    print("Job counts per family (Table I analogue):")
    for family, count in family_totals(labelled).items():
        print(f"  {family:<10s} {count}")

    counts = architecture_job_counts(labelled)
    rows = [
        {"class": name, "jobs": e["jobs"], "trials": e["trials"],
         "paper_jobs": e["paper_jobs"]}
        for name, e in counts.items()
    ]
    print("\nPer-class inventory (Tables VII-IX analogue):")
    print(format_table(rows))

    suite = build_challenge_suite(labelled, seed=0)
    print("\nChallenge datasets (Table IV analogue):")
    print(format_table(challenge_suite_table(suite)))

    paths = save_challenge_suite(suite, out_dir)
    total_mb = sum(p.stat().st_size for p in paths) / 1e6
    print(f"\nwrote {len(paths)} npz archives ({total_mb:.1f} MB) to {out_dir}/")

    # Verify the release loads back in the official layout.
    with np.load(paths[0]) as archive:
        assert set(archive.files) == {
            "X_train", "y_train", "model_train",
            "X_test", "y_test", "model_test",
        }
        print(f"verified layout of {paths[0].name}: "
              f"X_train {archive['X_train'].shape}")


if __name__ == "__main__":
    main()
