"""Kill a serving worker mid-run and recover without losing a prediction.

The fleet control plane (:mod:`repro.fleet`) shards job streams across
workers by consistent hashing and rebuilds a dead worker's sessions from
history replay.  This script makes the reliability claim concrete: run
the same traffic twice — once undisturbed, once killing the worker that
owns job 0 halfway through — and show that the surviving fleet re-emits
exactly what the dead worker lost, bit-identical to the unfailed run::

    python examples/fleet_failover.py
"""

import contextlib

from repro import SimulationConfig
from repro.data import build_challenge_suite, build_labelled_dataset
from repro.fleet import FleetRouter, FleetWorker
from repro.models import make_rf_cov
from repro.resilience.faults import FaultSpec, inject
from repro.serve import FleetLoadGenerator, ServeConfig, SimulatedClock


def build_fleet(model, window, gen, n_workers):
    """A router over ``n_workers`` in-process replicas on the gen's clock."""
    config = ServeConfig(window=window, hop=window, max_batch=32,
                         flush_deadline_s=0.0)
    workers = [
        FleetWorker(f"w{i}", model, config, clock=gen.clock)
        for i in range(n_workers)
    ]
    return FleetRouter(workers, clock=gen.clock, history=gen.job_stream)


def trace(emissions):
    """Per-job emission fingerprint: the failover parity currency."""
    out = {}
    for e in emissions:
        out.setdefault(e.job_id, []).append(
            (e.prediction.sample_index, e.prediction.label,
             e.prediction.smoothed_label, round(e.prediction.confidence, 9)))
    return out


def replay(model, window, series, *, kill_tick=None):
    """One full fleet replay; optionally kill job 0's owner at a tick."""
    gen = FleetLoadGenerator(
        series, n_jobs=24, samples_per_tick=window,
        max_samples_per_job=window * 12, seed=7, clock=SimulatedClock(),
    )
    router = build_fleet(model, window, gen, n_workers=4)
    victim = router.owner_of(0)
    if kill_tick is None:
        crash = contextlib.nullcontext()
    else:
        # Crash the victim at the top of its step on `kill_tick`: that
        # tick's chunks are already routed and queued on it, so they die
        # with it and failover replay must re-produce their predictions.
        # Workers step in sorted-id order, one fleet.worker.crash hit
        # each per tick, which makes the kill instant reproducible.
        hit = kill_tick * router.n_workers + sorted(
            router.worker_ids).index(victim) + 1
        crash = inject(FaultSpec("fleet.worker.crash", at_hit=hit,
                                 mode="raise"))
    with crash:
        report = gen.run(router)
    return report, router, victim


def main() -> None:
    # 1. The usual offline model (see serve_fleet.py for the long form).
    config = SimulationConfig(seed=2022, trials_scale=0.02,
                              min_jobs_per_class=2, startup_mean_s=28.0)
    labelled = build_labelled_dataset(config)
    ds = build_challenge_suite(labelled, seed=0, names=("60-random-1",))[
        "60-random-1"]
    model = make_rf_cov(n_estimators=30).fit(ds.X_train, ds.y_train)
    window = ds.n_samples
    series = [t.series for t in labelled.eligible(window).trials]
    print(f"offline model fitted on {ds.n_train} windows\n")

    # 2. The unfailed twin: 24 jobs across 4 workers, nobody dies.
    print("clean run (no failures):")
    clean, clean_router, _ = replay(model, window, series)
    print(f"  {len(clean.emissions)} predictions from "
          f"{clean_router.n_workers} workers\n")

    # 3. Same traffic, but job 0's owner is killed mid-run.  The router
    #    notices on the next call into it, re-owns its jobs on the ring,
    #    and rebuilds their sessions by replaying delivered history.
    print("failure run (worker killed mid-run):")
    failed, router, victim = replay(model, window, series, kill_tick=6)
    event = next(e for e in router.events if e.kind == "failover")
    print(f"  {victim} died owning {event.n_jobs} jobs; "
          f"{event.n_recovered} lost predictions re-emitted by replay")
    print(f"  survivors: {router.worker_ids}\n")

    # 4. The parity claim: per job, the union of pre-crash and recovered
    #    emissions is bit-identical to the unfailed twin.
    assert trace(failed.emissions) == trace(clean.emissions)
    print("parity: every (sample_index, label, smoothed, confidence) "
          "matches the unfailed run exactly")

    # 5. One fleet-wide operator view — counters add, histograms merge.
    fleet = router.fleet_metrics()
    print(f"\nfleet metrics after recovery "
          f"({int(fleet.gauge('fleet.workers').value)} workers):")
    for name in ("fleet.chunks.routed", "fleet.failovers",
                 "fleet.sessions.migrated", "fleet.predictions.recovered",
                 "predictions.emitted"):
        print(f"  {name:<30} {fleet.counter(name).value}")


if __name__ == "__main__":
    main()
