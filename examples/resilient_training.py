"""Surviving failures: atomic persistence, checkpoint/resume, fault injection.

Long training runs on shared clusters get preempted, and model files get
written by processes that can die mid-byte.  Part one crashes a
``save_model`` on purpose (via :mod:`repro.resilience`'s fault points) and
shows the old file surviving untouched, then bit-flips an archive and
watches the CRC32 check reject it.  Part two interrupts an LSTM training
run mid-epoch, resumes it from its crash-safe checkpoint, and verifies the
stitched history is *bit-identical* to an uninterrupted twin — the
invariant ``python -m repro resilience-bench`` asserts under real
SIGKILLs::

    python examples/resilient_training.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.models import LSTMClassifier
from repro.nn.loss import NLLLoss
from repro.nn.optim.adam import Adam
from repro.nn.optim.schedulers import CyclicCosineLR
from repro.nn.training import Trainer, load_checkpoint
from repro.resilience import FaultSpec, InjectedFault, inject
from repro.utils.persist import load_model, save_model


def crash_safe_persistence_demo(workdir: Path) -> None:
    """Kill a writer mid-write; detect a corrupted archive."""
    from repro.ml.preprocessing import StandardScaler

    path = workdir / "scaler.pkl"
    save_model(StandardScaler(), path)
    good_bytes = path.read_bytes()

    # A writer dying halfway through the payload must not touch the old
    # file: the write goes to a temp file and only an atomic os.replace
    # publishes it.  mode="raise" simulates the death in-process; the
    # bench uses mode="kill" (a real SIGKILL) in a subprocess.
    try:
        with inject(FaultSpec("persist.mid_write", mode="raise")):
            save_model(StandardScaler(), path)
    except InjectedFault:
        pass
    assert path.read_bytes() == good_bytes
    print("writer died mid-write: old archive intact, byte for byte")

    # Silent corruption (bad disk, partial rsync) is caught by the CRC32
    # stored in the repro-model-v1 header.
    raw = bytearray(good_bytes)
    raw[len(raw) - 10] ^= 0xFF  # land inside the pickled model payload
    victim = workdir / "corrupt.pkl"
    victim.write_bytes(bytes(raw))
    try:
        load_model(victim)
        raise SystemExit("corruption was not detected!")
    except ValueError as exc:
        print(f"bit-flipped archive rejected: {exc}")


def _make_trainer(seed: int = 7) -> Trainer:
    """Same construction for every incarnation — state comes from seeds
    (fresh run) or from the checkpoint (resume)."""
    model = LSTMClassifier(n_sensors=3, seq_len=8, n_classes=3,
                           hidden_size=6, seed=seed)
    optimizer = Adam(model.parameters(), lr=5e-3)
    scheduler = CyclicCosineLR(optimizer, cycle_len=3)
    return Trainer(model, optimizer, NLLLoss(), scheduler=scheduler,
                   batch_size=8, max_epochs=6, patience=10,
                   shuffle_rng=seed)


def checkpoint_resume_demo(workdir: Path) -> None:
    """Interrupt training mid-epoch; resume; compare histories bit for bit."""
    rng = np.random.default_rng(0)
    X_train = rng.standard_normal((32, 8, 3)).astype(np.float32)
    y_train = rng.integers(0, 3, 32)
    X_val = rng.standard_normal((16, 8, 3)).astype(np.float32)
    y_val = rng.integers(0, 3, 16)

    # The fault-free twin: what an uninterrupted run produces.
    history_free = _make_trainer().fit(X_train, y_train, X_val, y_val)

    # The preempted run: dies in the middle of epoch 4's second batch.
    ckpt = workdir / "lstm.ckpt"
    n_batches = -(-X_train.shape[0] // 8)
    try:
        with inject(FaultSpec("trainer.mid_epoch",
                              at_hit=3 * n_batches + 2, mode="raise")):
            _make_trainer().fit(X_train, y_train, X_val, y_val,
                                checkpoint_path=ckpt)
    except InjectedFault:
        pass
    print(f"training killed mid-epoch 4; checkpoint holds epoch "
          f"{load_checkpoint(ckpt).epoch}")

    # Resume restores parameters, Adam moments, the scheduler position,
    # the batch-shuffle RNG stream and the dropout RNGs — so the first
    # post-resume batch is the exact batch the dead run would have drawn.
    survivor = _make_trainer()
    history = survivor.resume(ckpt, X_train, y_train, X_val, y_val)

    assert history_free.matches(history), "histories diverged!"
    print(f"resumed history bit-identical to the fault-free run "
          f"({len(history.epochs)} epochs, "
          f"best val acc {history.best_val_accuracy:.2%})")


def main() -> None:
    """Run both demos in a temp directory."""
    with tempfile.TemporaryDirectory(prefix="repro-resilient-") as tmp:
        workdir = Path(tmp)
        crash_safe_persistence_demo(workdir)
        print()
        checkpoint_resume_demo(workdir)
    print("\nFor the SIGKILL version of this story (real process death, "
          "registry writers included):\n    python -m repro resilience-bench")


if __name__ == "__main__":
    main()
