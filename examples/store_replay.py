"""Storing and replaying telemetry: the crash-safe sharded store.

A fleet's telemetry is worth keeping: the same streams that drove live
classification can re-drive the serving stack later — to debug an
incident, to qualify a challenger model against last week's traffic, or
to rerun a drift scenario at 10x speed.  This walkthrough archives a
simulated release into :class:`repro.store.TelemetryStore` (per-shard
write-ahead logs sealed into immutable mmap'd segment files), reads it
back zero-copy, replays it deterministically through a fresh inference
server at a rate multiplier, and compacts old segments to time-bucketed
means while keeping full-trace covariance features exact via stored
moments::

    python examples/store_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.data.fulltrace import full_trace_covariance
from repro.models import make_rf_cov
from repro.simcluster.cluster import ClusterSimulator, SimulationConfig
from repro.store import ReplayConfig, Replayer, TelemetryStore, compact_store


def archive_release(root: Path) -> TelemetryStore:
    """Simulate a tiny release straight into a 4-shard store."""
    store = TelemetryStore(root, n_shards=4)
    sim = ClusterSimulator(SimulationConfig(seed=2022, trials_scale=0.01))
    jobs, _ = sim.generate(store=store)   # ingests + seals before returning
    stats = store.stats()
    print(f"archived {stats['n_trials']} trials / {stats['total_rows']} rows "
          f"across {stats['n_shards']} shards "
          f"(manifest v{stats['manifest_version']})")
    # Sealed reads are zero-copy views of the segment memmaps.
    first = store.keys()[0]
    series = store.series(*first)
    print(f"trial {first}: shape {series.shape}, dtype {series.dtype}, "
          f"view (no copy): {series.base is not None}")
    return store


def replay_fleet(store: TelemetryStore) -> None:
    """Re-drive the archived fleet against a freshly trained model."""
    ds = store.labelled_dataset(min_samples=540)
    X = np.stack([t.series[:540] for t in ds])
    y = ds.labels()
    model = make_rf_cov(n_estimators=40).fit(X, y)

    for rate in (1.0, 8.0):
        replayer = Replayer(store, ReplayConfig(n_jobs=12, rate=rate, seed=0))
        report = replayer.run(model)
        print(f"rate {rate:>4}x: {report.n_predictions} predictions over "
              f"{report.sim_seconds:.0f} simulated s "
              f"({report.wall_seconds:.2f} wall s), "
              f"smoothed accuracy {report.smoothed_accuracy():.2%}")


def compact_and_verify(store: TelemetryStore) -> None:
    """Downsample history; full-trace features stay exact via moments."""
    key = store.keys()[0]
    raw = np.array(store.series(*key))
    mean, scale = raw.mean(axis=0), raw.std(axis=0) + 1e-8
    before = full_trace_covariance(raw, mean, scale)

    report = compact_store(store, bucket=10, keep_segments=0)
    print(f"compacted {report.segments_compacted} segments: "
          f"{report.rows_before} -> {report.rows_after} rows "
          f"({report.row_reduction:.0%} smaller)")

    # The compacted slice carries the original rows' (count, sum, gram)
    # moments, so covariance features survive the downsampling exactly.
    after = store.moments(*key).standardized_covariance(mean, scale)
    print(f"full-trace features preserved: "
          f"{np.allclose(before, after, rtol=1e-8, atol=1e-10)}")


def main() -> None:
    """Archive, replay, and compact inside a temp directory."""
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "telemetry"
        with archive_release(root) as store:
            replay_fleet(store)
            compact_and_verify(store)


if __name__ == "__main__":
    main()
