"""Train the Section V-A bidirectional LSTM baseline.

Demonstrates the full RNN pipeline on CPU: per-sensor standardization, the
BiLSTM classifier with the paper's head (projection to sequence length →
dropout 0.5 → leaky ReLU → classes → log-softmax), Adam with the cyclical
cosine LR schedule, and early stopping on validation accuracy::

    python examples/train_lstm.py

A few minutes on one core (the demo downsamples the 540-sample window 4×
in time and uses a reduced hidden size; Section V used h=128 on a V100).
"""

from repro import SimulationConfig, WorkloadClassificationChallenge
from repro.core.baselines import run_rnn_baseline


def main() -> None:
    challenge = WorkloadClassificationChallenge.from_simulation(
        SimulationConfig(seed=2022, trials_scale=0.03, min_jobs_per_class=4,
                         startup_mean_s=28.0),
        names=("60-middle-1",),
    )
    print(challenge.summary(), "\n")

    result = run_rnn_baseline(
        challenge, "lstm", "60-middle-1",
        hidden_size=32,          # paper: 128
        n_layers=1,
        max_epochs=12,           # paper: up to 1000 w/ patience 100
        patience=6,
        batch_size=32,
        time_stride=4,           # 540 -> 135 timesteps for CPU budget
        verbose=True,
    )
    print(f"\nbest validation accuracy: {result['test_accuracy']:.2%} "
          f"(epoch {result['best_epoch']}/{result['epochs_run']})")
    print(f"parameters: {result['n_parameters']:,}; "
          f"training took {result['fit_seconds']:.0f}s")

    history = result["history"]
    print("\nepoch  loss    val-acc  lr")
    for e in history.epochs:
        print(f"{e.epoch:>5d}  {e.train_loss:6.3f}  {e.val_accuracy:7.2%} "
              f"{e.lr:8.2e}")


if __name__ == "__main__":
    main()
