"""Quickstart: build a challenge instance and score one baseline.

Runs in well under a minute on a laptop core::

    python examples/quickstart.py
"""

from repro import SimulationConfig, WorkloadClassificationChallenge
from repro.models import make_rf_cov


def main() -> None:
    # 1. Synthesize a small labelled release (the stand-in for downloading
    #    the MIT Supercloud labelled dataset) and window it into the
    #    challenge datasets.  trials_scale=1.0 would reproduce the full
    #    3,430-job release; 0.03 keeps this demo fast.
    challenge = WorkloadClassificationChallenge.from_simulation(
        SimulationConfig(seed=2022, trials_scale=0.03, min_jobs_per_class=4),
        names=("60-start-1", "60-middle-1", "60-random-1"),
    )
    print("Challenge datasets (Table IV analogue):")
    print(challenge.summary())
    print()

    # 2. Evaluate the paper's best traditional baseline — a random forest
    #    on the 28 covariance features (Section IV-A) — per the challenge
    #    protocol: fit on the train split, report test accuracy.
    for name in challenge.dataset_names():
        result = challenge.evaluate(
            make_rf_cov(n_estimators=100, max_features=None), name
        )
        print(f"RF + covariance on {name:<12s}: "
              f"test accuracy {result['accuracy']:.2%}")

    # 3. Submissions are plain prediction vectors; the leaderboard scores
    #    and ranks them.
    ds = challenge.dataset("60-middle-1")
    model = make_rf_cov(n_estimators=100, max_features=None)
    model.fit(ds.X_train, ds.y_train)
    entry = challenge.submit("rf-cov-baseline", "60-middle-1",
                             model.predict(ds.X_test))
    print()
    print("Leaderboard:")
    print(challenge.leaderboard.format())
    assert entry.accuracy > 0.2, "baseline should beat 26-class chance by far"


if __name__ == "__main__":
    main()
