"""Explore the simulated telemetry of individual jobs.

Shows what the datacenter instrumentation substrate produces for different
architecture families — the phase structure (generic startup → steady-state
epochs), the seven GPU sensors of Table III, and the slower CPU-side metrics
of Table II::

    python examples/explore_telemetry.py
"""

import numpy as np

from repro.simcluster import (
    ARCHITECTURES,
    CPU_METRICS,
    GPU_SENSORS,
    ClusterSimulator,
    PhaseKind,
    SimulationConfig,
    WorkloadGenerator,
    get_architecture,
)


def sparkline(values: np.ndarray, width: int = 64) -> str:
    """Render a series as a unicode sparkline (terminal-friendly plot)."""
    blocks = " ▁▂▃▄▅▆▇█"
    # Downsample to the target width by block means.
    n = len(values)
    edges = np.linspace(0, n, width + 1).astype(int)
    means = np.array([values[a:b].mean() if b > a else values[min(a, n - 1)]
                      for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = means.min(), means.max()
    span = hi - lo if hi > lo else 1.0
    idx = ((means - lo) / span * (len(blocks) - 1)).astype(int)
    return "".join(blocks[i] for i in idx)


def show_job(name: str, seed: int) -> None:
    gen = WorkloadGenerator(startup_mean_s=28.0)
    spec = get_architecture(name)
    telemetry = gen.generate_job(spec, 300.0, np.random.default_rng(seed))
    data = telemetry.gpu_series[0].data
    print(f"=== {name} ({spec.family.value}), 300 s, "
          f"{data.shape[0]} samples @ 9 Hz ===")
    for j, sensor in enumerate(GPU_SENSORS):
        series = data[:, j]
        print(f"  {sensor.name:<24s} [{series.min():7.1f}, {series.max():7.1f}] "
              f"{sparkline(series)}")
    phases = ", ".join(
        f"{p.kind.value}:{p.duration_s:.0f}s" for p in telemetry.schedule.phases[:5]
    )
    print(f"  phases: {phases}, ...")
    startup = telemetry.schedule.first(PhaseKind.STARTUP)
    print(f"  (startup lasts {startup.duration_s:.0f}s — note the generic "
          "near-idle prefix in every sensor)\n")


def show_cpu_side() -> None:
    """One full job from the cluster driver, with CPU metrics."""
    sim = ClusterSimulator(SimulationConfig(seed=11, trials_scale=0.004,
                                            min_jobs_per_class=1))
    job = sim.generate_one(*sim.job_plan()[0])
    cpu = job.cpu_series
    print(f"=== CPU metrics for job {job.record.job_id} ({job.architecture}), "
          f"{cpu.n_samples} samples @ {cpu.dt_s:.0f} s ===")
    for j, metric in enumerate(CPU_METRICS):
        series = cpu.data[:, j]
        print(f"  {metric.name:<16s} [{series.min():10.1f}, {series.max():10.1f}] "
              f"{sparkline(series, 48)}")
    gpu_len = job.gpu_series[0].n_samples
    print(f"\n  GPU series has {gpu_len} samples vs CPU's {cpu.n_samples} — "
          "the different-sampling-rates challenge from Section III-C.")


def main() -> None:
    # One representative per family: compare the telemetry shapes.
    for name, seed in [("VGG16", 1), ("Bert", 2), ("NNConv", 3)]:
        show_job(name, seed)
    show_cpu_side()
    print(f"\nLabelled classes available: {len(ARCHITECTURES)}")


if __name__ == "__main__":
    main()
