"""Error analysis: where does workload classification actually fail?

Trains the RF+covariance baseline, then breaks its errors down the way a
datacenter operator would want: family-level confusion (Table I families),
the hardest class pairs, and the per-job-type power-efficiency table the
paper suggests in Section IV-B::

    python examples/error_analysis.py
"""

from repro import SimulationConfig, WorkloadClassificationChallenge
from repro.analysis import family_confusion, hardest_pairs, job_type_efficiency
from repro.analysis.confusion import within_family_error_fraction
from repro.data import build_labelled_dataset
from repro.data.stats import format_table
from repro.models import make_rf_cov


def main() -> None:
    config = SimulationConfig(seed=2022, trials_scale=0.05,
                              min_jobs_per_class=5, startup_mean_s=28.0)
    challenge = WorkloadClassificationChallenge.from_simulation(
        config, names=("60-random-1",))
    ds = challenge.dataset("60-random-1")

    model = make_rf_cov(n_estimators=100, max_features=None)
    model.fit(ds.X_train, ds.y_train)
    preds = model.predict(ds.X_test)
    accuracy = (preds == ds.y_test).mean()
    print(f"RF+Cov on 60-random-1: {accuracy:.2%} test accuracy "
          f"({ds.n_test} trials)\n")

    # --- Family-level confusion --------------------------------------------
    C, families = family_confusion(ds.y_test, preds)
    rows = []
    for i, fam in enumerate(families):
        row = {"true \\ pred": fam}
        for j, other in enumerate(families):
            row[other] = int(C[i, j])
        rows.append(row)
    print("Family-level confusion (rows = truth):")
    print(format_table(rows))

    frac = within_family_error_fraction(ds.y_test, preds)
    if frac == frac:  # not NaN
        print(f"\n{frac:.0%} of errors stay within the true family — the "
              "classifier solves the family problem and stumbles on "
              "sibling variants.")

    # --- Hardest pairs -------------------------------------------------------
    pairs = hardest_pairs(ds.y_test, preds, top=5)
    if pairs:
        print("\nHardest class pairs:")
        print(format_table(pairs))

    # --- Power-efficiency analysis (Section IV-B suggestion) ---------------
    labelled = build_labelled_dataset(config)
    reports = job_type_efficiency(labelled)
    print("\nPer-job-type GPU power efficiency (top and bottom 3):")
    print(format_table([r.row() for r in reports[:3] + reports[-3:]]))


if __name__ == "__main__":
    main()
