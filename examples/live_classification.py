"""Classify a live workload stream — the paper's deployment use case.

Section VI: models should help "classifying snapshots of data from live
workloads running in-progress, which represents a viable use case for
these types of models to be deployed".  This example trains the RF+Cov
baseline offline, then replays a held-out job's telemetry sample-by-sample
through :class:`repro.core.OnlineWorkloadClassifier`, printing the rolling
prediction as the job runs::

    python examples/live_classification.py
"""

import numpy as np

from repro import SimulationConfig
from repro.core import OnlineWorkloadClassifier
from repro.data import build_challenge_suite, build_labelled_dataset
from repro.models import make_rf_cov
from repro.simcluster.architectures import architecture_names


def main() -> None:
    config = SimulationConfig(seed=2022, trials_scale=0.03, min_jobs_per_class=4,
                              startup_mean_s=28.0)
    labelled = build_labelled_dataset(config)
    suite = build_challenge_suite(labelled, seed=0, names=("60-random-1",))
    ds = suite["60-random-1"]

    model = make_rf_cov(n_estimators=100, max_features=None)
    model.fit(ds.X_train, ds.y_train)
    print(f"offline model fitted on {ds.n_train} windows; now going live.\n")

    # Replay a fresh job's full telemetry as a live stream.
    live = max(labelled.eligible(1200).trials, key=lambda t: t.n_samples)
    names = architecture_names()
    print(f"streaming job {live.job_id} ({live.n_samples} samples @ 9 Hz); "
          f"true class: {names[live.label]}\n")

    online = OnlineWorkloadClassifier(model=model, window=540, hop=270,
                                      vote_window=5)
    chunk = 90  # 10 s of telemetry per poll
    print(f"{'t (s)':>7s}  {'window pred':<14s} {'smoothed':<14s} conf")
    for start in range(0, live.n_samples, chunk):
        for pred in online.push(live.series[start : start + chunk]):
            t_s = pred.sample_index / 9.0
            print(f"{t_s:7.0f}  {names[pred.label]:<14s} "
                  f"{names[pred.smoothed_label]:<14s} {pred.confidence:.2f}")

    final = online.push(np.empty((0, 7)))  # no-op flush for symmetry
    assert final == []
    print("\nNote how early windows (startup phase) are least reliable and "
          "the smoothed vote settles as steady-state telemetry arrives — "
          "the start-window effect of Tables V/VI, live.")


if __name__ == "__main__":
    main()
