"""Serve a simulated fleet through the streaming inference service.

Scales the single-stream deployment story of ``live_classification.py``
to a whole fleet: train the RF+Cov baseline offline, publish it to a
:class:`repro.serve.ModelRegistry`, then replay dozens of concurrent job
streams through the micro-batching :class:`repro.serve.InferenceServer`
and read the operator metrics — throughput, latency percentiles, batch
sizes, admission decisions::

    python examples/serve_fleet.py
"""

import tempfile

from repro import SimulationConfig
from repro.data import build_challenge_suite, build_labelled_dataset
from repro.models import make_rf_cov
from repro.serve import (
    FleetLoadGenerator,
    InferenceServer,
    ModelRegistry,
    ServeConfig,
)
from repro.simcluster.architectures import architecture_names


def main() -> None:
    # 1. Offline training, exactly as in the single-stream example.
    config = SimulationConfig(seed=2022, trials_scale=0.02,
                              min_jobs_per_class=2, startup_mean_s=28.0)
    labelled = build_labelled_dataset(config)
    suite = build_challenge_suite(labelled, seed=0, names=("60-random-1",))
    ds = suite["60-random-1"]
    model = make_rf_cov(n_estimators=50).fit(ds.X_train, ds.y_train)
    print(f"offline model fitted on {ds.n_train} windows")

    # 2. Publish to a registry; the server fetches by name (the fitted
    #    pipeline round-trips through disk, like a real deployment).
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-registry-"))
    version = registry.register("rf_cov", model)
    print(f"registered rf_cov v{version} at {registry.root}\n")

    # 3. Replay a 24-job fleet; windows from all jobs share batches.
    window = ds.n_samples
    eligible = labelled.eligible(window)
    gen = FleetLoadGenerator(
        [t.series for t in eligible.trials],
        [t.label for t in eligible.trials],
        n_jobs=24, samples_per_tick=90, max_samples_per_job=1620, seed=7,
    )
    server = InferenceServer(
        registry.get("rf_cov"),
        ServeConfig(window=window, max_batch=32, flush_deadline_s=30.0),
        clock=gen.clock,
    )
    report = gen.run(server)

    names = architecture_names()
    print(f"{report.n_jobs} jobs, {report.n_predictions} windows classified "
          f"in {server.batcher.n_predict_calls} predict calls "
          f"({report.windows_per_second:,.0f} windows/s)")
    final, true = report.final_smoothed(), report.true_labels
    correct = sum(final.get(j) == lbl for j, lbl in true.items())
    print(f"fleet view: {correct}/{len(true)} jobs ended on the correct "
          f"smoothed label, e.g. job 0 -> {names[final[0]]} "
          f"(true {names[true[0]]})\n")
    print(server.metrics.report())


if __name__ == "__main__":
    main()
