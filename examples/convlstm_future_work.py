"""Train the ConvLSTM — the paper's proposed future-work architecture.

Section VI: "we believe that the ConvLSTM architecture is promising in its
ability to capture convolutional features in both the input-to-state and
state-to-state domains".  This example realizes that proposal: a 1-D
ConvLSTM scans the 60-second window as ~12 coarse segments, convolving
within each segment, and is trained with the same recipe as the Section V
baselines::

    python examples/convlstm_future_work.py
"""

import numpy as np

from repro import SimulationConfig, WorkloadClassificationChallenge
from repro.ml.preprocessing import TimeSeriesStandardScaler
from repro.models.convlstm_model import ConvLSTMClassifier
from repro.nn import Adam, CyclicCosineLR, NLLLoss, Trainer


def main() -> None:
    challenge = WorkloadClassificationChallenge.from_simulation(
        SimulationConfig(seed=2022, trials_scale=0.03, min_jobs_per_class=4,
                         startup_mean_s=28.0),
        names=("60-middle-1",),
    )
    ds = challenge.dataset("60-middle-1")
    scaler = TimeSeriesStandardScaler()
    X_train = scaler.fit_transform(ds.X_train).astype(np.float32)
    X_test = scaler.transform(ds.X_test).astype(np.float32)

    model = ConvLSTMClassifier(
        n_sensors=7, seq_len=540, n_classes=26,
        n_segments=12,        # 12 coarse recurrent steps of ~5 s each
        hidden_channels=24,   # convolutional state channels
        kernel_size=5,
        seed=0,
    )
    print(f"ConvLSTM classifier: {model.n_parameters():,} parameters, "
          f"{model.n_segments} segments of "
          f"{540 // model.n_segments} samples\n")

    optimizer = Adam(model.parameters(), lr=2e-3)
    trainer = Trainer(
        model, optimizer, NLLLoss(),
        scheduler=CyclicCosineLR(optimizer, cycle_len=6),
        batch_size=32, max_epochs=10, patience=6, verbose=True,
    )
    history = trainer.fit(X_train, ds.y_train, X_test, ds.y_test)

    print(f"\nbest validation accuracy: {history.best_val_accuracy:.2%} "
          f"(26-class chance: {1 / 26:.2%})")
    print("The paper reports no ConvLSTM numbers — this is its future-work "
          "direction, made runnable.")


if __name__ == "__main__":
    main()
