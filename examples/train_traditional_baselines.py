"""Reproduce the Section IV protocol on a reduced-scale instance.

Grid-searches the four traditional baselines (SVM/RF × PCA/covariance) on
one dataset exactly the way the paper does — k-fold grid search over the
paper's hyperparameter values, then test-set scoring — and prints a
Table V-style row, the XGBoost analysis of Section IV-B included::

    python examples/train_traditional_baselines.py [dataset-name]

Takes a few minutes on one core.  Crank ``TRIALS_SCALE`` toward 1.0 to
approach the paper's 14,590-trial scale (and its accuracy levels).
"""

import sys

from repro import SimulationConfig, WorkloadClassificationChallenge
from repro.core.baselines import run_traditional_baseline, run_xgboost_baseline

TRIALS_SCALE = 0.08


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "60-random-1"
    challenge = WorkloadClassificationChallenge.from_simulation(
        SimulationConfig(seed=2022, trials_scale=TRIALS_SCALE,
                         min_jobs_per_class=6, startup_mean_s=28.0),
        names=(dataset,),
    )
    print(challenge.summary(), "\n")

    print(f"{'model':<10s} {'test acc':>9s} {'cv acc':>8s}  best params")
    print("-" * 70)
    for model in ("svm_pca", "svm_cov", "rf_pca", "rf_cov"):
        result = run_traditional_baseline(
            challenge, model, dataset,
            cv=3,                      # paper: 10-fold; reduced for demo speed
            rf_trees=(50, 100),        # paper also sweeps 250
        )
        print(f"{model:<10s} {result['test_accuracy']:>8.2%} "
              f"{result['cv_accuracy']:>7.2%}  {result['best_params']} "
              f"({result['fit_seconds']:.0f}s fit)")

    print("\nXGBoost on covariance features (Section IV-B):")
    xgb = run_xgboost_baseline(
        challenge, dataset, cv=3,
        grid={"clf__gamma": [0.0, 1.0], "clf__reg_alpha": [0.0, 0.1],
              "clf__reg_lambda": [1.0]},
        n_estimators=40,
    )
    print(f"  test accuracy: {xgb['test_accuracy']:.2%} "
          f"(paper: 88.47% on the full-scale 60-random-1)")
    print(f"  best regularization: {xgb['best_params']}")
    print("  top-5 covariance features by gain importance:")
    for name, value in xgb["feature_importance"][:5]:
        print(f"    {value:6.3f}  {name}")


if __name__ == "__main__":
    main()
